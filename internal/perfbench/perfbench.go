// Package perfbench is the repository's performance harness: it runs a
// fixed set of micro-benchmarks over the simulator's hot paths (engine
// stepping, cluster dispatch, trace encode/decode, metrics summaries)
// plus the parallel experiment suite's wall-clock, and renders the
// results as a machine-readable BENCH_<date>.json. Checked-in BENCH
// files form the project's performance trajectory and are recorded at
// quick scale (Compare refuses quick-vs-full comparisons); CI
// regenerates the measurements on every push and fails when any gated
// benchmark (see GatedBenchmarks) regresses more than a configured
// fraction against the newest checked-in baseline (see Compare).
//
// The scenarios are ordinary testing.B functions, so `go test -bench`
// exercises the exact same code through bench_test.go while cmd/perfbench
// drives them programmatically via testing.Benchmark.
package perfbench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/serverless-sched/sfs/internal/chain"
	"github.com/serverless-sched/sfs/internal/cluster"
	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/experiments"
	"github.com/serverless-sched/sfs/internal/lifecycle"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

// EngineStepBenchmark is the name of the single-host benchmark the CI
// regression gate has watched since the gate existed.
const EngineStepBenchmark = "engine-step"

// GatedBenchmarks lists every benchmark the CI regression gate fails
// on. The heavyweight cluster-1m scenario is deliberately absent: it
// runs one multi-second iteration, which is too noisy to gate at 25%.
func GatedBenchmarks() []string {
	return []string{
		EngineStepBenchmark,
		"sharded-cluster",
		"trace-binary-decode",
		"trace-binary-encode",
		"predicted-dispatch",
		"host-pipeline",
	}
}

// Options parameterizes a harness run.
type Options struct {
	// Quick shrinks scenario sizes so the whole harness finishes in
	// seconds. This is both the CI mode and the scale the repository's
	// checked-in BENCH_*.json baselines record — Compare refuses
	// quick-vs-full comparisons, so trajectory points must stay at one
	// scale for the gate to work. Full mode is for local deep dives.
	Quick bool
	// Seed drives every synthetic input.
	Seed uint64
	// Workers is the worker count for the parallel experiment suite
	// timing (0 = all CPUs).
	Workers int
	// SkipExperiments skips the experiment-suite wall-clock phase
	// (used by unit tests that only need the micro-benchmarks).
	SkipExperiments bool
	// SkipHeavy skips scenarios marked Heavy (the 1M-invocation cluster
	// run); unit tests and exploratory runs use this to stay fast while
	// the checked-in trajectory reports keep the full set.
	SkipHeavy bool
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// Benchmark is one scenario's measurement.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
	// Shards records the simulation shard count a cluster scenario ran
	// with (0 for serial/non-cluster scenarios), so cross-host baseline
	// comparisons know the parallelism the number was measured at.
	Shards int `json:"shards,omitempty"`
}

// ExperimentTiming records the experiment suite's wall-clock at one and
// at Workers workers — the headline the parallel runner exists for.
type ExperimentTiming struct {
	Workers            int     `json:"workers"`
	WallClockMS        float64 `json:"wall_clock_ms"`
	SerialWallClockMS  float64 `json:"serial_wall_clock_ms"`
	Speedup            float64 `json:"speedup"`
	Experiments        int     `json:"experiments"`
	DeterministicBytes bool    `json:"deterministic_bytes"` // parallel == serial rendered output
}

// Report is the full harness output, serialized as BENCH_<date>.json.
type Report struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	CPUs      int    `json:"cpus"`
	// GoMaxProcs is the scheduler parallelism the harness actually ran
	// with — distinct from CPUs (the physical count): on a 1-CPU box the
	// sharded scenarios execute their windows serially, so their ns/op
	// carries no parallel speedup. Notes records that caveat when it
	// applies.
	GoMaxProcs int      `json:"gomaxprocs,omitempty"`
	Notes      []string `json:"notes,omitempty"`
	Quick      bool     `json:"quick"`
	Seed       uint64   `json:"seed"`
	// CalibrationNsPerOp measures a fixed pure-CPU integer loop on the
	// machine that produced the report. Compare uses the ratio of
	// calibrations to normalize ns/op across machines, so a baseline
	// recorded on one box still gates code regressions (not hardware
	// differences) on another.
	CalibrationNsPerOp float64           `json:"calibration_ns_per_op,omitempty"`
	Benchmarks         []Benchmark       `json:"benchmarks"`
	Experiments        *ExperimentTiming `json:"experiments,omitempty"`
}

// calibSink defeats dead-code elimination of the calibration loop.
var calibSink uint64

// calibrate times a fixed integer-arithmetic loop (a rough proxy for
// the simulator's integer/pointer-heavy work) on this machine.
func calibrate() float64 {
	res := testing.Benchmark(func(b *testing.B) {
		var x uint64 = 0x9e3779b97f4a7c15
		for i := 0; i < b.N; i++ {
			for j := 0; j < 4096; j++ {
				x = x*6364136223846793005 + 1442695040888963407
			}
		}
		calibSink = x
	})
	if res.N == 0 {
		return 0
	}
	return float64(res.T.Nanoseconds()) / float64(res.N)
}

// Scenario is one named micro-benchmark.
type Scenario struct {
	Name  string
	Bench func(b *testing.B)
	// Shards is the simulation shard count the scenario drives (0 for
	// serial scenarios); recorded into the Benchmark measurement.
	Shards int
	// Heavy marks scenarios too large for unit-test and -short runs
	// (see Options.SkipHeavy).
	Heavy bool
}

// size picks a scenario scale.
func size(quick bool, full int) int {
	if quick {
		return full / 8
	}
	return full
}

// Scenarios returns the harness's micro-benchmarks at the given scale.
// bench_test.go runs them through `go test -bench`; Run measures them
// with testing.Benchmark.
func Scenarios(quick bool, seed uint64) []Scenario {
	return []Scenario{
		{
			// One op = driving a full SFS engine run over a fixed
			// Azure-sampled workload; this is the simulator's innermost
			// loop and the number the CI regression gate tracks.
			Name: EngineStepBenchmark,
			Bench: func(b *testing.B) {
				n := size(quick, 4000)
				w := workload.AzureSampled(workload.AzureSampledSpec{
					N: n, Cores: 16, Load: 1.0, Seed: seed,
				})
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					eng := cpusim.NewEngine(cpusim.Config{Cores: 16, Deadline: 1000 * time.Hour},
						core.New(core.DefaultConfig()))
					eng.Submit(w.Clone()...)
					eng.Run()
				}
				b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "tasks/s")
			},
		},
		{
			// One op = a 4-host cluster run under JSQ dispatch,
			// exercising the host next-event heap and per-host engines.
			Name: "cluster-dispatch",
			Bench: func(b *testing.B) {
				n := size(quick, 4000)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d, err := cluster.NewDispatcher("JSQ", cluster.FactoryConfig{Hosts: 4, Seed: seed})
					if err != nil {
						b.Fatal(err)
					}
					cl, err := cluster.New(cluster.Config{
						Hosts: 4, CoresPerHost: 4,
						NewScheduler: func() cpusim.Scheduler { return core.New(core.DefaultConfig()) },
						Dispatcher:   d,
					})
					if err != nil {
						b.Fatal(err)
					}
					src := workload.AzureSampledStream(workload.AzureSampledSpec{
						N: n, Cores: 16, Load: 1.0, Seed: seed,
					})
					if _, err := cl.Run(src); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			// One op = driving the workflow layer over the synthetic
			// multi-stage family: request expansion, per-completion
			// downstream release, and the end-to-end bookkeeping.
			Name: "chain-run",
			Bench: func(b *testing.B) {
				n := size(quick, 2000)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					src, ccfg, err := workload.ChainStream(workload.ChainSpec{
						N: n, Cores: 16, Load: 0.9, Family: "LINEAR", Depth: 4, Seed: seed,
					})
					if err != nil {
						b.Fatal(err)
					}
					inj, err := chain.NewInjector(ccfg)
					if err != nil {
						b.Fatal(err)
					}
					eng := cpusim.NewEngine(cpusim.Config{Cores: 16, Deadline: 1000 * time.Hour},
						core.New(core.DefaultConfig()))
					if _, err := chain.Run(src, inj, nil, eng); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			// One op = a 64-host fleet run through the sharded
			// epoch-barrier engine (8 shards): the parallel simulation
			// hot path — per-shard heaps, window advance, barrier-time
			// dispatch — at a fleet size the serial loop was never
			// meant for.
			Name:   "sharded-cluster",
			Shards: 8,
			Bench: func(b *testing.B) {
				const hosts, cores = 64, 2
				n := size(quick, 16000)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d, err := cluster.NewDispatcher("JSQ", cluster.FactoryConfig{Hosts: hosts, Seed: seed})
					if err != nil {
						b.Fatal(err)
					}
					cl, err := cluster.New(cluster.Config{
						Hosts: hosts, CoresPerHost: cores,
						NewScheduler: func() cpusim.Scheduler { return core.New(core.DefaultConfig()) },
						Dispatcher:   d,
						Shards:       8,
					})
					if err != nil {
						b.Fatal(err)
					}
					src := workload.AzureSampledStream(workload.AzureSampledSpec{
						N: n, Cores: hosts * cores, Load: 1.0, Seed: seed,
					})
					if _, err := cl.Run(src); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "tasks/s")
			},
		},
		{
			// One op = a heterogeneous 16-host fleet run under the
			// PREDICTED dispatcher with PSRTF hosts, per-host speed
			// factors, and a stochastic dispatch network delay — the
			// estimate-driven path: per-dispatch prediction + backlog
			// accounting, completion observation at the barrier merge,
			// and speed-scaled engine stints.
			Name:   "predicted-dispatch",
			Shards: 4,
			Bench: func(b *testing.B) {
				const hosts, cores = 16, 2
				n := size(quick, 8000)
				speeds := make([]float64, hosts)
				for i := range speeds {
					speeds[i] = 1.5
					if i%2 == 1 {
						speeds[i] = 0.5
					}
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					d, err := cluster.NewDispatcher("PREDICTED", cluster.FactoryConfig{Hosts: hosts, Seed: seed})
					if err != nil {
						b.Fatal(err)
					}
					cl, err := cluster.New(cluster.Config{
						Hosts: hosts, CoresPerHost: cores,
						NewScheduler: func() cpusim.Scheduler { return sched.NewPSRTF(nil) },
						Dispatcher:   d,
						Shards:       4,
						Speeds:       speeds,
						NetDelay:     dist.Uniform{Lo: 200 * time.Microsecond, Hi: 2 * time.Millisecond},
						NetDelaySeed: seed,
					})
					if err != nil {
						b.Fatal(err)
					}
					src := workload.AzureSampledStream(workload.AzureSampledSpec{
						N: n, Cores: hosts * cores, Load: 1.0, Seed: seed,
					})
					if _, err := cl.Run(src); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "tasks/s")
			},
		},
		{
			// One op = a standalone run through the unified host-runtime
			// core (internal/host) with a lifecycle stage attached: a
			// warm-pool acquire hook before every submit, a release hook
			// on every finish, and the runtime's single (time, seq) hook
			// queue ordering the loop. This is the stage-pipeline
			// overhead the event-loop unification must keep flat — the
			// gate catches a pipeline that starts allocating or
			// dispatching per event.
			Name: "host-pipeline",
			Bench: func(b *testing.B) {
				n := size(quick, 4000)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					p, err := lifecycle.NewPolicy("TTL", lifecycle.PolicyConfig{TTL: time.Minute})
					if err != nil {
						b.Fatal(err)
					}
					mgr, err := lifecycle.New(lifecycle.Config{Policy: p, Seed: seed})
					if err != nil {
						b.Fatal(err)
					}
					eng := cpusim.NewEngine(cpusim.Config{Cores: 16, Deadline: 1000 * time.Hour},
						core.New(core.DefaultConfig()))
					src := workload.AzureSampledStream(workload.AzureSampledSpec{
						N: n, Cores: 16, Load: 1.0, Seed: seed,
					})
					if _, err := lifecycle.Run(src, mgr, eng); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "tasks/s")
			},
		},
		{
			// One op = loading a pre-rendered CSV trace into a
			// replay-ready struct-of-arrays tape — the same artifact the
			// binary scenario below produces, so the two ns/op divide
			// into the codec speedup directly.
			Name: "trace-decode",
			Bench: func(b *testing.B) {
				n := size(quick, 8000)
				var buf bytes.Buffer
				if _, err := trace.WriteCSV(&buf, workload.Stream(workload.Spec{
					N: n, Cores: 16, Load: 0.9, Seed: seed,
				})); err != nil {
					b.Fatal(err)
				}
				raw := buf.Bytes()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					src, err := trace.NewCSVSource(bytes.NewReader(raw))
					if err != nil {
						b.Fatal(err)
					}
					tp, err := trace.TapeFrom(src)
					if err != nil {
						b.Fatal(err)
					}
					if tp.Len() != n {
						b.Fatalf("decoded %d tasks, want %d", tp.Len(), n)
					}
				}
			},
		},
		{
			// One op = streaming a materialized workload out as CSV.
			Name: "trace-encode",
			Bench: func(b *testing.B) {
				n := size(quick, 8000)
				w := workload.Generate(workload.Spec{N: n, Cores: 16, Load: 0.9, Seed: seed})
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := trace.WriteCSV(io.Discard, w.Source()); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			// One op = loading a pre-rendered binary (SFTB) trace into a
			// replay-ready struct-of-arrays tape via the columnar decoder
			// (no per-record task materialization — task structs come out
			// of the arena during replay, measured by cluster-1m). Same
			// workload, same scale, same output artifact as trace-decode,
			// so the two ns/op divide into the codec speedup directly.
			Name: "trace-binary-decode",
			Bench: func(b *testing.B) {
				n := size(quick, 8000)
				var buf bytes.Buffer
				if _, err := trace.WriteBinary(&buf, workload.Stream(workload.Spec{
					N: n, Cores: 16, Load: 0.9, Seed: seed,
				})); err != nil {
					b.Fatal(err)
				}
				raw := buf.Bytes()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tp, err := trace.ReadBinaryTape(bytes.NewReader(raw))
					if err != nil {
						b.Fatal(err)
					}
					if tp.Len() != n {
						b.Fatalf("decoded %d tasks, want %d", tp.Len(), n)
					}
				}
			},
		},
		{
			// One op = streaming a materialized workload out as binary.
			Name: "trace-binary-encode",
			Bench: func(b *testing.B) {
				n := size(quick, 8000)
				w := workload.Generate(workload.Spec{N: n, Cores: 16, Load: 0.9, Seed: seed})
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := trace.WriteBinary(io.Discard, w.Source()); err != nil {
						b.Fatal(err)
					}
				}
			},
		},
		{
			// One op = the headline datacenter-scale run: one million
			// invocations across one thousand hosts through the sharded
			// engine, replayed from a struct-of-arrays tape via a block
			// arena. Heavy: it stays at full scale even in quick mode
			// (the point is proving the scale completes), runs a single
			// iteration, and is excluded from the regression gate.
			Name:   "cluster-1m",
			Shards: 16,
			Heavy:  true,
			Bench: func(b *testing.B) {
				const hosts, cores, n = 1000, 4, 1_000_000
				tape, err := trace.TapeFrom(workload.Stream(workload.Spec{
					N: n, Cores: hosts * cores, Load: 1.0, Seed: seed,
				}))
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d, err := cluster.NewDispatcher("RR", cluster.FactoryConfig{Hosts: hosts, Seed: seed})
					if err != nil {
						b.Fatal(err)
					}
					cl, err := cluster.New(cluster.Config{
						Hosts: hosts, CoresPerHost: cores,
						NewScheduler:    func() cpusim.Scheduler { return core.New(core.DefaultConfig()) },
						Dispatcher:      d,
						Shards:          16,
						DispatchLatency: 5 * time.Millisecond,
					})
					if err != nil {
						b.Fatal(err)
					}
					res, err := cl.Run(tape.Source())
					if err != nil {
						b.Fatal(err)
					}
					if res.Aborted {
						b.Fatal("cluster-1m run aborted")
					}
				}
				b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "tasks/s")
			},
		},
		{
			// One op = a one-pass streaming summary (mean + P² p50/p99)
			// over a finished run, the metrics path every table row uses.
			Name: "metrics-summary",
			Bench: func(b *testing.B) {
				n := size(quick, 8000)
				w := workload.Generate(workload.Spec{N: n, Cores: 16, Load: 0.9, Seed: seed})
				tasks := w.Clone()
				for i, t := range tasks {
					t.CPUUsed = t.Service
					t.MarkFinished(t.Arrival + time.Duration(i%997)*time.Millisecond)
				}
				run := metrics.Run{Scheduler: "bench", Tasks: tasks}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sum := run.Summarize(50, 90, 99)
					_ = sum.Percentiles()
					_ = sum.Mean()
				}
			},
		},
	}
}

// Run executes the harness and assembles a Report (not yet written to
// disk; see WriteFile).
func Run(opts Options) (*Report, error) {
	rep := &Report{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Quick:      opts.Quick,
		Seed:       opts.Seed,
	}
	if rep.GoMaxProcs == 1 {
		rep.Notes = append(rep.Notes,
			"GOMAXPROCS=1: sharded scenarios ran their windows serially; ns/op carries no parallel speedup on this box")
	}
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}

	rep.CalibrationNsPerOp = calibrate()
	logf("%-18s %12.0f ns/op (machine-speed reference for cross-host gating)",
		"calibration", rep.CalibrationNsPerOp)

	for _, s := range Scenarios(opts.Quick, opts.Seed) {
		if s.Heavy && opts.SkipHeavy {
			logf("%-18s skipped (heavy)", s.Name)
			continue
		}
		res := testing.Benchmark(s.Bench)
		if res.N == 0 {
			return nil, fmt.Errorf("perfbench: scenario %s did not run (panic or Fatal inside benchmark)", s.Name)
		}
		b := Benchmark{
			Name:        s.Name,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			Iterations:  res.N,
			Shards:      s.Shards,
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
		logf("%-18s %12.0f ns/op %10d allocs/op %12d B/op (n=%d)",
			b.Name, b.NsPerOp, b.AllocsPerOp, b.BytesPerOp, b.Iterations)
	}

	if !opts.SkipExperiments {
		workers := opts.Workers
		if workers <= 0 {
			workers = runtime.NumCPU()
		}
		cfg := experiments.Config{Quick: opts.Quick, Seed: opts.Seed}

		start := time.Now()
		serial := experiments.RunAll(cfg, 1)
		serialMS := float64(time.Since(start)) / float64(time.Millisecond)
		logf("experiment suite: %d experiments, workers=1: %.0f ms", len(serial), serialMS)

		start = time.Now()
		parallel := experiments.RunAll(cfg, workers)
		parallelMS := float64(time.Since(start)) / float64(time.Millisecond)
		logf("experiment suite: workers=%d: %.0f ms", workers, parallelMS)

		identical := len(serial) == len(parallel)
		for i := 0; identical && i < len(serial); i++ {
			identical = serial[i].Render() == parallel[i].Render() &&
				serial[i].CSV() == parallel[i].CSV()
		}
		speedup := 0.0
		if parallelMS > 0 {
			speedup = serialMS / parallelMS
		}
		rep.Experiments = &ExperimentTiming{
			Workers:            workers,
			WallClockMS:        parallelMS,
			SerialWallClockMS:  serialMS,
			Speedup:            speedup,
			Experiments:        len(serial),
			DeterministicBytes: identical,
		}
		if !identical {
			return rep, fmt.Errorf("perfbench: parallel experiment output diverged from serial output")
		}
	}
	return rep, nil
}

// FileName returns the trajectory file name for the report's date.
func (r *Report) FileName() string { return "BENCH_" + r.Date + ".json" }

// WriteFile serializes the report into dir as BENCH_<date>.json and
// returns the path.
func (r *Report) WriteFile(dir string) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, r.FileName())
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a previously written report.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perfbench: parsing %s: %w", path, err)
	}
	return &r, nil
}

// Find returns the named benchmark from the report.
func (r *Report) Find(name string) (Benchmark, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Compare enforces the regression gate: current's benchmark `name` may
// be at most maxRegress (e.g. 0.25 for +25%) slower in ns/op than
// baseline's. When both reports carry a calibration measurement, the
// current ns/op is first normalized by the machine-speed ratio
// (currentCalib / baselineCalib), so a baseline recorded on different
// hardware — e.g. the checked-in trajectory point vs a CI runner —
// gates code changes rather than CPU differences. Scale mismatches
// (quick vs full) are an error rather than a silent apples-to-oranges
// pass.
func Compare(current, baseline *Report, name string, maxRegress float64) error {
	if current.Quick != baseline.Quick {
		return fmt.Errorf("perfbench: scale mismatch: current quick=%v, baseline quick=%v",
			current.Quick, baseline.Quick)
	}
	cur, ok := current.Find(name)
	if !ok {
		return fmt.Errorf("perfbench: current report lacks benchmark %q", name)
	}
	base, ok := baseline.Find(name)
	if !ok {
		return fmt.Errorf("perfbench: baseline lacks benchmark %q", name)
	}
	if base.NsPerOp <= 0 {
		return fmt.Errorf("perfbench: baseline %q has invalid ns/op %v", name, base.NsPerOp)
	}
	normalized := cur.NsPerOp
	how := "raw"
	if current.CalibrationNsPerOp > 0 && baseline.CalibrationNsPerOp > 0 {
		normalized = cur.NsPerOp * baseline.CalibrationNsPerOp / current.CalibrationNsPerOp
		how = "calibration-normalized"
	}
	limit := base.NsPerOp * (1 + maxRegress)
	if normalized > limit {
		return fmt.Errorf("perfbench: %s regressed: %.0f ns/op %s (raw %.0f) vs baseline %.0f ns/op (limit %.0f, +%.0f%%)",
			name, normalized, how, cur.NsPerOp, base.NsPerOp, limit, 100*(normalized/base.NsPerOp-1))
	}
	return nil
}

// LatestBaseline returns the lexically-newest BENCH_*.json in dir (the
// date format sorts chronologically), or "" when none exist.
func LatestBaseline(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	latest := ""
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "BENCH_") || !strings.HasSuffix(name, ".json") {
			continue
		}
		if name > latest {
			latest = name
		}
	}
	if latest == "" {
		return "", nil
	}
	return filepath.Join(dir, latest), nil
}
