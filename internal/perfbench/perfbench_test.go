package perfbench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestCompareGate: the regression gate trips on >maxRegress slowdowns,
// passes within tolerance, and refuses scale mismatches.
func TestCompareGate(t *testing.T) {
	base := &Report{Quick: true, Benchmarks: []Benchmark{{Name: EngineStepBenchmark, NsPerOp: 1000}}}
	ok := &Report{Quick: true, Benchmarks: []Benchmark{{Name: EngineStepBenchmark, NsPerOp: 1200}}}
	bad := &Report{Quick: true, Benchmarks: []Benchmark{{Name: EngineStepBenchmark, NsPerOp: 1300}}}
	full := &Report{Quick: false, Benchmarks: []Benchmark{{Name: EngineStepBenchmark, NsPerOp: 1000}}}

	if err := Compare(ok, base, EngineStepBenchmark, 0.25); err != nil {
		t.Fatalf("+20%% should pass a 25%% gate: %v", err)
	}
	if err := Compare(bad, base, EngineStepBenchmark, 0.25); err == nil {
		t.Fatal("+30% must fail a 25% gate")
	}
	if err := Compare(full, base, EngineStepBenchmark, 0.25); err == nil {
		t.Fatal("quick/full scale mismatch must be an error")
	}
	if err := Compare(&Report{Quick: true}, base, EngineStepBenchmark, 0.25); err == nil {
		t.Fatal("missing benchmark must be an error")
	}
}

// TestCompareCalibrationNormalized: when both reports carry a machine
// calibration, the gate judges the speed ratio, not raw ns/op — a slow
// machine is forgiven, a fast machine cannot hide a real regression.
func TestCompareCalibrationNormalized(t *testing.T) {
	base := &Report{Quick: true, CalibrationNsPerOp: 1000,
		Benchmarks: []Benchmark{{Name: EngineStepBenchmark, NsPerOp: 1000}}}
	// Machine 2x slower (calibration 2000): raw 1900 ns/op normalizes
	// to 950 — within the 25% gate even though raw is +90%.
	slow := &Report{Quick: true, CalibrationNsPerOp: 2000,
		Benchmarks: []Benchmark{{Name: EngineStepBenchmark, NsPerOp: 1900}}}
	if err := Compare(slow, base, EngineStepBenchmark, 0.25); err != nil {
		t.Fatalf("slow machine should be normalized away: %v", err)
	}
	// Machine 2x faster (calibration 500): raw 700 ns/op normalizes to
	// 1400 — a genuine +40% code regression the fast hardware was
	// masking.
	fast := &Report{Quick: true, CalibrationNsPerOp: 500,
		Benchmarks: []Benchmark{{Name: EngineStepBenchmark, NsPerOp: 700}}}
	if err := Compare(fast, base, EngineStepBenchmark, 0.25); err == nil {
		t.Fatal("fast machine must not mask a normalized regression")
	}
	// A baseline without calibration falls back to the raw comparison.
	legacy := &Report{Quick: true, Benchmarks: []Benchmark{{Name: EngineStepBenchmark, NsPerOp: 1000}}}
	if err := Compare(slow, legacy, EngineStepBenchmark, 0.25); err == nil {
		t.Fatal("raw fallback should flag +90% when no calibration exists")
	}
}

// TestReportRoundTrip: WriteFile emits the BENCH_<date>.json schema and
// ReadFile restores it.
func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rep := &Report{
		Date: "2026-01-02", GoVersion: "go1.24", GOOS: "linux", GOARCH: "amd64",
		CPUs: 8, Quick: true, Seed: 42,
		Benchmarks:  []Benchmark{{Name: EngineStepBenchmark, NsPerOp: 123.5, AllocsPerOp: 7, BytesPerOp: 512, Iterations: 100}},
		Experiments: &ExperimentTiming{Workers: 8, WallClockMS: 100, SerialWallClockMS: 400, Speedup: 4, Experiments: 26, DeterministicBytes: true},
	}
	path, err := rep.WriteFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "BENCH_2026-01-02.json" {
		t.Fatalf("unexpected file name %s", path)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Benchmarks[0] != rep.Benchmarks[0] || *back.Experiments != *rep.Experiments {
		t.Fatalf("round trip mutated the report: %+v", back)
	}

	// The schema must include the fields the CI gate and trajectory
	// tooling key on.
	raw, _ := os.ReadFile(path)
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"date", "quick", "benchmarks", "experiments", "cpus"} {
		if _, ok := m[k]; !ok {
			t.Errorf("BENCH json lacks %q", k)
		}
	}
}

// TestLatestBaseline: the newest BENCH file wins; empty dirs are not an
// error.
func TestLatestBaseline(t *testing.T) {
	dir := t.TempDir()
	if p, err := LatestBaseline(dir); err != nil || p != "" {
		t.Fatalf("empty dir: %q, %v", p, err)
	}
	for _, n := range []string{"BENCH_2026-01-02.json", "BENCH_2025-12-31.json", "other.json"} {
		if err := os.WriteFile(filepath.Join(dir, n), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err := LatestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p) != "BENCH_2026-01-02.json" {
		t.Fatalf("picked %s", p)
	}
}

// TestScenariosComplete: the harness must cover the hot paths the
// tentpole optimized, and every scenario must actually run.
func TestScenariosComplete(t *testing.T) {
	names := map[string]bool{}
	for _, s := range Scenarios(true, 42) {
		names[s.Name] = true
	}
	for _, want := range []string{EngineStepBenchmark, "cluster-dispatch", "sharded-cluster", "chain-run",
		"predicted-dispatch", "trace-decode", "trace-encode", "trace-binary-decode",
		"trace-binary-encode", "cluster-1m", "metrics-summary"} {
		if !names[want] {
			t.Errorf("scenario %q missing", want)
		}
	}
	// Every gated benchmark must exist as a scenario.
	for _, want := range GatedBenchmarks() {
		if !names[want] {
			t.Errorf("gated benchmark %q has no scenario", want)
		}
	}
}

// TestRunQuickMicro: a micro-only harness run produces a well-formed
// report with positive measurements.
func TestRunQuickMicro(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every micro-benchmark")
	}
	rep, err := Run(Options{Quick: true, Seed: 42, SkipExperiments: true, SkipHeavy: true})
	if err != nil {
		t.Fatal(err)
	}
	light := 0
	for _, s := range Scenarios(true, 42) {
		if !s.Heavy {
			light++
		}
	}
	if len(rep.Benchmarks) != light {
		t.Fatalf("measured %d of %d non-heavy scenarios", len(rep.Benchmarks), light)
	}
	for _, b := range rep.Benchmarks {
		if b.NsPerOp <= 0 || b.Iterations <= 0 {
			t.Errorf("%s: implausible measurement %+v", b.Name, b)
		}
	}
	if rep.Date == "" || rep.GoVersion == "" {
		t.Errorf("missing provenance: %+v", rep)
	}
}
