package schedulers

import (
	"strings"
	"testing"
)

// TestNamesInSync: every presented name must be canonical, unique, and
// resolvable to a constructor. (The shared registry helper enforces
// name↔constructor sync structurally; this pins the public surface.)
func TestNamesInSync(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range Names() {
		if n != strings.ToUpper(n) {
			t.Errorf("name %s is not canonical upper-case", n)
		}
		if seen[n] {
			t.Errorf("duplicate name %s", n)
		}
		seen[n] = true
		if _, err := New(n); err != nil {
			t.Errorf("name %s has no constructor: %v", n, err)
		}
	}
}

// TestNewConstructsEveryScheduler: each registered name must build a
// working scheduler that reports a non-empty name.
func TestNewConstructsEveryScheduler(t *testing.T) {
	for _, n := range Names() {
		s, err := New(n)
		if err != nil {
			t.Errorf("New(%q): %v", n, err)
			continue
		}
		if s.Name() == "" {
			t.Errorf("scheduler %s reports an empty name", n)
		}
	}
}

// TestNewCaseInsensitive: lookups must ignore case.
func TestNewCaseInsensitive(t *testing.T) {
	for _, n := range Names() {
		for _, variant := range []string{strings.ToLower(n), n[:1] + strings.ToLower(n[1:])} {
			if _, err := New(variant); err != nil {
				t.Errorf("New(%q): %v", variant, err)
			}
		}
	}
}

// TestNewUnknown: unknown names must error, and the error must list
// every valid choice so CLI users can self-correct.
func TestNewUnknown(t *testing.T) {
	_, err := New("nope")
	if err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	for _, n := range Names() {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("error %q does not mention %s", err, n)
		}
	}
}

// TestNamesIsACopy: mutating the returned slice must not corrupt the
// registry.
func TestNamesIsACopy(t *testing.T) {
	a := Names()
	a[0] = "CLOBBERED"
	if Names()[0] == "CLOBBERED" {
		t.Fatal("Names returns the registry's backing array")
	}
}
