package schedulers_test

import (
	"fmt"

	"github.com/serverless-sched/sfs/internal/schedulers"
)

// ExampleNew shows the name → constructor registry the CLIs select
// schedulers from: lookups are case-insensitive and unknown names fail
// with the full list of choices.
func ExampleNew() {
	s, err := schedulers.New("cfs") // case-insensitive
	if err != nil {
		panic(err)
	}
	fmt.Println(s.Name())

	_, err = schedulers.New("O(1)")
	fmt.Println(err)
	// Output:
	// CFS
	// unknown scheduler "O(1)" (want one of SFS, CFS, EEVDF, FIFO, RR, SRTF, PSRTF, COREGRANULAR, LOTTERY)
}

// ExampleNames enumerates the registry, the same list both CLIs print
// in their -h output.
func ExampleNames() {
	for _, n := range schedulers.Names() {
		fmt.Println(n)
	}
	// Output:
	// SFS
	// CFS
	// EEVDF
	// FIFO
	// RR
	// SRTF
	// PSRTF
	// COREGRANULAR
	// LOTTERY
}
