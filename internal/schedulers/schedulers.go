// Package schedulers is the shared name → constructor registry for the
// CLIs and harnesses that select a scheduler from a flag, so the set of
// recognized names cannot drift between tools.
//
// It lives outside internal/sched because SFS (internal/core) itself
// imports internal/sched for its second scheduling level.
package schedulers

import (
	"fmt"
	"strings"

	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/sched"
)

// constructors maps canonical names to default-config constructors.
var constructors = map[string]func() cpusim.Scheduler{
	"SFS":          func() cpusim.Scheduler { return core.New(core.DefaultConfig()) },
	"CFS":          func() cpusim.Scheduler { return sched.NewCFS(sched.CFSConfig{}) },
	"EEVDF":        func() cpusim.Scheduler { return sched.NewEEVDF(sched.EEVDFConfig{}) },
	"FIFO":         func() cpusim.Scheduler { return sched.NewFIFO() },
	"RR":           func() cpusim.Scheduler { return sched.NewRR(0) },
	"SRTF":         func() cpusim.Scheduler { return sched.NewSRTF() },
	"PSRTF":        func() cpusim.Scheduler { return sched.NewPSRTF(nil) },
	"COREGRANULAR": func() cpusim.Scheduler { return sched.NewCoreGranular() },
	"LOTTERY":      func() cpusim.Scheduler { return sched.NewLottery(0, 1) },
}

// names in presentation order.
var names = []string{"SFS", "CFS", "EEVDF", "FIFO", "RR", "SRTF", "PSRTF", "COREGRANULAR", "LOTTERY"}

// Names returns the canonical scheduler names New recognizes.
func Names() []string { return append([]string(nil), names...) }

// New constructs a scheduler by case-insensitive name with its default
// configuration. Callers needing tuned configurations (e.g. sfs-sim's
// SFS knobs) construct those directly and fall back here for the rest.
func New(name string) (cpusim.Scheduler, error) {
	mk, ok := constructors[strings.ToUpper(name)]
	if !ok {
		return nil, fmt.Errorf("unknown scheduler %q (want one of %s)", name, strings.Join(names, ", "))
	}
	return mk(), nil
}
