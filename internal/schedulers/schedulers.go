// Package schedulers is the shared name → constructor registry for the
// CLIs and harnesses that select a scheduler from a flag, so the set of
// recognized names cannot drift between tools.
//
// It lives outside internal/sched because SFS (internal/core) itself
// imports internal/sched for its second scheduling level.
package schedulers

import (
	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/registry"
	"github.com/serverless-sched/sfs/internal/sched"
)

// reg maps canonical names to default-config constructors, in
// presentation order.
var reg = registry.New[func() cpusim.Scheduler]("scheduler").
	Add("SFS", func() cpusim.Scheduler { return core.New(core.DefaultConfig()) }).
	Add("CFS", func() cpusim.Scheduler { return sched.NewCFS(sched.CFSConfig{}) }).
	Add("EEVDF", func() cpusim.Scheduler { return sched.NewEEVDF(sched.EEVDFConfig{}) }).
	Add("FIFO", func() cpusim.Scheduler { return sched.NewFIFO() }).
	Add("RR", func() cpusim.Scheduler { return sched.NewRR(0) }).
	Add("SRTF", func() cpusim.Scheduler { return sched.NewSRTF() }).
	Add("PSRTF", func() cpusim.Scheduler { return sched.NewPSRTF(nil) }).
	Add("COREGRANULAR", func() cpusim.Scheduler { return sched.NewCoreGranular() }).
	Add("LOTTERY", func() cpusim.Scheduler { return sched.NewLottery(0, 1) })

// Names returns the canonical scheduler names New recognizes.
func Names() []string { return reg.Names() }

// New constructs a scheduler by case-insensitive name with its default
// configuration. Callers needing tuned configurations (e.g. sfs-sim's
// SFS knobs) construct those directly and fall back here for the rest.
func New(name string) (cpusim.Scheduler, error) {
	mk, err := reg.Lookup(name)
	if err != nil {
		return nil, err
	}
	return mk(), nil
}
