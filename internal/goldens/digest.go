package goldens

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/serverless-sched/sfs/internal/chain"
	"github.com/serverless-sched/sfs/internal/cluster"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/lifecycle"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/schedulers"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

// Digest dimensions: small enough that the whole matrix runs in
// seconds, large enough that a shifted constant moves a percentile.
const (
	digestN     = 600
	digestCores = 8
	digestSeed  = 1
)

// digestScheds is the scheduler half of the policy matrix.
var digestScheds = []string{"SFS", "CFS"}

// digestPolicies is the keep-alive half of the policy matrix.
var digestPolicies = []string{"TTL", "HIST"}

// fd keeps digest rendering in one place (metrics.FormatDuration is
// already byte-stable).
func fd(d time.Duration) string { return metrics.FormatDuration(d) }

// FamilyDigest renders one scenario family's golden digest: the trace's
// shape statistics, each scheduler's turnaround percentiles, and each
// keep-alive policy's cold-start profile. Everything below is
// deterministic in (family, digestSeed); any engine, policy, or
// generator change shows up as a byte diff.
func FamilyDigest(family string) (string, error) {
	src, err := workload.NewFamily(family, workload.FamilyConfig{
		N: digestN, Cores: digestCores, Seed: digestSeed,
	})
	if err != nil {
		return "", err
	}
	tasks := trace.Collect(src)
	if err := trace.Err(src); err != nil {
		return "", err
	}
	if len(tasks) == 0 {
		return "", fmt.Errorf("family %s emitted no invocations", family)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "digest v1: family=%s n=%d cores=%d seed=%d\n",
		strings.ToUpper(family), digestN, digestCores, digestSeed)
	b.WriteString(traceDigest(tasks))

	for _, name := range digestScheds {
		s, err := schedulers.New(name)
		if err != nil {
			return "", err
		}
		eng := cpusim.NewEngine(cpusim.Config{Cores: digestCores, Deadline: 10000 * time.Hour}, s)
		eng.Submit(trace.CloneTasks(tasks)...)
		eng.Run()
		r := metrics.Run{Scheduler: name, Tasks: eng.Tasks()}
		ps := r.Percentiles([]float64{50, 99})
		fmt.Fprintf(&b, "sched=%s: p50=%s p99=%s mean=%s rte50=%.3f rte95=%.3f\n",
			name, fd(ps[0]), fd(ps[1]), fd(r.MeanTurnaround()),
			r.FractionRTEAtLeast(0.5), r.FractionRTEAtLeast(0.95))
	}

	for _, policy := range digestPolicies {
		mgr, err := lifecycle.NewByName(policy, 0, lifecycle.DefaultTTL, digestSeed)
		if err != nil {
			return "", err
		}
		s, err := schedulers.New("SFS")
		if err != nil {
			return "", err
		}
		eng := cpusim.NewEngine(cpusim.Config{Cores: digestCores, Deadline: 10000 * time.Hour}, s)
		if _, err := lifecycle.Run(trace.FromTasks(family, tasks), mgr, eng); err != nil {
			return "", err
		}
		st := mgr.Stats()
		fmt.Fprintf(&b, "keepalive=%s: cold=%d warm-hit=%.1f%% cold-mean=%s\n",
			policy, st.ColdStarts, 100*st.WarmHitRatio(), fd(st.MeanColdLatency()))
	}
	return b.String(), nil
}

// traceDigest renders the workload-shape lines shared by every family
// digest: span, per-app spread, and service-time percentiles of the
// generated trace itself (independent of any scheduler).
func traceDigest(tasks []*task.Task) string {
	apps := map[string]int{}
	var svc []time.Duration
	io := 0
	for _, t := range tasks {
		apps[t.App]++
		svc = append(svc, t.Service)
		if len(t.IOOps) > 0 {
			io++
		}
	}
	sort.Slice(svc, func(i, j int) bool { return svc[i] < svc[j] })
	span := time.Duration(tasks[len(tasks)-1].Arrival - tasks[0].Arrival)
	top := topApps(apps, 3)
	var b strings.Builder
	fmt.Fprintf(&b, "trace: n=%d span=%s apps=%d io=%d\n", len(tasks), fd(span), len(apps), io)
	fmt.Fprintf(&b, "service: p50=%s p99=%s max=%s\n",
		fd(svc[len(svc)/2]), fd(svc[len(svc)*99/100]), fd(svc[len(svc)-1]))
	fmt.Fprintf(&b, "top-apps: %s\n", top)
	return b.String()
}

// topApps renders the k highest-volume apps as "name:count" in
// deterministic order (count desc, name asc).
func topApps(apps map[string]int, k int) string {
	type ac struct {
		app string
		n   int
	}
	all := make([]ac, 0, len(apps))
	for a, n := range apps {
		all = append(all, ac{a, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].app < all[j].app
	})
	if len(all) > k {
		all = all[:k]
	}
	parts := make([]string, len(all))
	for i, a := range all {
		parts[i] = fmt.Sprintf("%s:%d", a.app, a.n)
	}
	return strings.Join(parts, " ")
}

// predictedDigestFamilies are the scenario families the prediction
// digest pins; the fixture-sync test keeps the on-disk set in
// lockstep.
var predictedDigestFamilies = []string{"poisson", "diurnal"}

// PredictedDigest renders the prediction layer's golden digest for one
// scenario family: PSRTF on a single host (the online estimator driving
// preemption decisions) and the PREDICTED dispatcher over a
// heterogeneous-speed fleet with a stochastic dispatch network delay —
// every code path PR 8 added, pinned byte-for-byte.
func PredictedDigest(family string) (string, error) {
	src, err := workload.NewFamily(family, workload.FamilyConfig{
		N: digestN, Cores: digestCores, Seed: digestSeed,
	})
	if err != nil {
		return "", err
	}
	tasks := trace.Collect(src)
	if err := trace.Err(src); err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "digest v1: predicted family=%s n=%d cores=%d seed=%d\n",
		strings.ToUpper(family), digestN, digestCores, digestSeed)

	// Single-host PSRTF: learning trajectory included, since estimates
	// feed back into the schedule.
	s, err := schedulers.New("PSRTF")
	if err != nil {
		return "", err
	}
	eng := cpusim.NewEngine(cpusim.Config{Cores: digestCores, Deadline: 10000 * time.Hour}, s)
	eng.Submit(trace.CloneTasks(tasks)...)
	eng.Run()
	r := metrics.Run{Scheduler: "PSRTF", Tasks: eng.Tasks()}
	ps := r.Percentiles([]float64{50, 99})
	fmt.Fprintf(&b, "sched=PSRTF: p50=%s p99=%s mean=%s rte50=%.3f rte95=%.3f\n",
		fd(ps[0]), fd(ps[1]), fd(r.MeanTurnaround()),
		r.FractionRTEAtLeast(0.5), r.FractionRTEAtLeast(0.95))

	// PREDICTED dispatch over a heterogeneous fleet (same aggregate
	// capacity as digestCores) with dispatcher→host network delay.
	const hosts = 4
	d, err := cluster.NewDispatcher("PREDICTED", cluster.FactoryConfig{Hosts: hosts, Seed: digestSeed})
	if err != nil {
		return "", err
	}
	cl, err := cluster.New(cluster.Config{
		Hosts:        hosts,
		CoresPerHost: digestCores / hosts,
		NewScheduler: func() cpusim.Scheduler { return sched.NewPSRTF(nil) },
		Dispatcher:   d,
		Speeds:       []float64{1.5, 0.5, 1.5, 0.5},
		NetDelay:     dist.Uniform{Lo: 200 * time.Microsecond, Hi: 2 * time.Millisecond},
		NetDelaySeed: digestSeed,
	})
	if err != nil {
		return "", err
	}
	res, err := cl.Run(trace.FromTasks(family, trace.CloneTasks(tasks)))
	if err != nil {
		return "", err
	}
	sum := res.Merged.Summarize(50, 99)
	cps := sum.Percentiles()
	fmt.Fprintf(&b, "cluster=PSRTFxPREDICTED hosts=%d speeds=1.5/0.5 netdelay=uniform[200µs,2ms): p50=%s p99=%s mean=%s makespan=%s\n",
		hosts, fd(cps[0]), fd(cps[1]), fd(sum.Mean()), fd(time.Duration(res.Makespan)))
	var disp []string
	for i, hr := range res.PerHost {
		disp = append(disp, fmt.Sprintf("h%d:%d@%.2gx", i, hr.Dispatches, hr.Speed))
	}
	fmt.Fprintf(&b, "dispatches: %s\n", strings.Join(disp, " "))
	return b.String(), nil
}

// TriggerChainDigest renders the trigger family's workflow-expanded
// digest: the trigger mix feeds its per-class chains through the
// injector, measuring end-to-end workflow turnaround and slowdown —
// the chain layer's regression surface.
func TriggerChainDigest() (string, error) {
	src, cfg, err := workload.TriggerStream(workload.TriggerSpec{
		N: digestN, Cores: digestCores, Seed: digestSeed,
	})
	if err != nil {
		return "", err
	}
	inj, err := chain.NewInjector(cfg)
	if err != nil {
		return "", err
	}
	s, err := schedulers.New("SFS")
	if err != nil {
		return "", err
	}
	eng := cpusim.NewEngine(cpusim.Config{Cores: digestCores, Deadline: 10000 * time.Hour}, s)
	makespan, err := chain.Run(src, inj, nil, eng)
	if err != nil {
		return "", err
	}
	r := metrics.Run{Scheduler: "SFS", Tasks: eng.Tasks()}
	ps := r.Percentiles([]float64{50, 99})
	wfr := metrics.WorkflowRun{Scheduler: "SFS", Workflows: inj.Workflows()}
	slow := wfr.SlowdownPercentiles(50, 99)

	var b strings.Builder
	fmt.Fprintf(&b, "digest v1: trigger-chain n=%d cores=%d seed=%d sched=SFS\n",
		digestN, digestCores, digestSeed)
	fmt.Fprintf(&b, "stages: n=%d makespan=%s p50=%s p99=%s\n",
		len(eng.Tasks()), fd(makespan), fd(ps[0]), fd(ps[1]))
	fmt.Fprintf(&b, "workflows: completed=%d mean-slowdown=%.2fx p50=%.2fx p99=%.2fx\n",
		wfr.Completed(), wfr.MeanSlowdown(), slow[0], slow[1])
	return b.String(), nil
}
