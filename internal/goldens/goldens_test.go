package goldens

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/serverless-sched/sfs/internal/azure"
	"github.com/serverless-sched/sfs/internal/workload"
)

// TestGoldenFamilies pins every scenario family's simulated metrics to
// its checked-in fixture. Sweeping FamilyNames() keeps the fixture set
// and the registry in lockstep: adding a family without blessing a
// fixture fails here with the -update hint.
func TestGoldenFamilies(t *testing.T) {
	for _, family := range workload.FamilyNames() {
		t.Run(family, func(t *testing.T) {
			got, err := FamilyDigest(family)
			if err != nil {
				t.Fatal(err)
			}
			Check(t, "family-"+strings.ToLower(family), got)
		})
	}
}

// TestGoldenFixtureSync: every family and prediction fixture on disk
// corresponds to a registered family — deleted families must take
// their goldens along.
func TestGoldenFixtureSync(t *testing.T) {
	known := map[string]bool{}
	for _, f := range workload.FamilyNames() {
		known["family-"+strings.ToLower(f)+".golden"] = true
	}
	for _, f := range predictedDigestFamilies {
		known["predicted-"+strings.ToLower(f)+".golden"] = true
	}
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".golden") ||
			(!strings.HasPrefix(name, "family-") && !strings.HasPrefix(name, "predicted-")) {
			continue
		}
		if !known[name] {
			t.Errorf("fixture %s has no registered scenario family; delete it or restore the family", name)
		}
	}
}

// TestGoldenPredicted pins the prediction layer — PSRTF hosts, the
// PREDICTED dispatcher, heterogeneous speeds, and the network-delay
// stream — on a steady family and a shaped one.
func TestGoldenPredicted(t *testing.T) {
	for _, family := range predictedDigestFamilies {
		t.Run(family, func(t *testing.T) {
			got, err := PredictedDigest(family)
			if err != nil {
				t.Fatal(err)
			}
			Check(t, "predicted-"+strings.ToLower(family), got)
		})
	}
}

// TestGoldenTriggerChain pins the workflow-expanded trigger mix.
func TestGoldenTriggerChain(t *testing.T) {
	got, err := TriggerChainDigest()
	if err != nil {
		t.Fatal(err)
	}
	Check(t, "trigger-chain", got)
}

// TestGoldenAzureIngest pins the streaming CSV ingestion path: the
// dataset fixtures in internal/azure/testdata flow through
// DurationsIndex + IngestTape and the resulting tape is digested.
func TestGoldenAzureIngest(t *testing.T) {
	durf, err := os.Open(filepath.Join("..", "azure", "testdata", "durations_sample.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer durf.Close()
	idx, err := azure.DurationsIndex(durf)
	if err != nil {
		t.Fatal(err)
	}
	invf, err := os.Open(filepath.Join("..", "azure", "testdata", "invocations_sample.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer invf.Close()
	tp, stats, err := azure.IngestTape(invf, idx, azure.IngestConfig{Seed: digestSeed})
	if err != nil {
		t.Fatal(err)
	}
	tasks := tp.Materialize(nil)
	var b strings.Builder
	fmt.Fprintf(&b, "digest v1: azure-ingest seed=%d\n", digestSeed)
	fmt.Fprintf(&b, "ingest: rows=%d functions=%d invocations=%d no-duration=%d truncated=%v\n",
		stats.Rows, stats.Functions, stats.Invocations, stats.NoDuration, stats.Truncated)
	b.WriteString(traceDigest(tasks))
	Check(t, "azure-ingest", b.String())
}
