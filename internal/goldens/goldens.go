// Package goldens is the golden-metrics regression harness: it renders
// small deterministic simulations of every scenario family into
// byte-stable text digests and compares them against fixtures checked
// in under testdata/. Any change to a policy constant, engine
// mechanism, or generator — intended or not — shifts at least one
// digest and fails `go test ./...` with a readable diff; intended
// shifts are blessed with
//
//	go test ./internal/goldens -run Golden -update
//
// which regenerates the fixtures for review in the same commit. On a
// mismatch the harness also writes the offending digest next to its
// fixture as testdata/<name>.got, so CI can upload the regenerated
// bytes as an artifact.
package goldens

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden fixtures from the current digests")

// path returns the fixture location for a digest name.
func path(name string) string { return filepath.Join("testdata", name+".golden") }

// Check compares got against the named fixture. With -update it
// (re)writes the fixture instead and always passes. On a mismatch it
// writes testdata/<name>.got and fails with the first differing line
// and the -update hint.
func Check(t *testing.T, name, got string) {
	t.Helper()
	if !strings.HasSuffix(got, "\n") {
		got += "\n"
	}
	p := path(name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		os.Remove(gotPath(name))
		return
	}
	want, err := os.ReadFile(p)
	if err != nil {
		t.Fatalf("golden fixture %s missing (%v) — run `go test ./internal/goldens -run Golden -update` and commit the result", p, err)
	}
	if string(want) == got {
		os.Remove(gotPath(name))
		return
	}
	if err := os.WriteFile(gotPath(name), []byte(got), 0o644); err != nil {
		t.Errorf("writing %s: %v", gotPath(name), err)
	}
	t.Errorf("golden digest %q drifted from %s:\n%s\nfull digest written to %s\nif the change is intended: go test ./internal/goldens -run Golden -update",
		name, p, firstDiff(string(want), got), gotPath(name))
}

func gotPath(name string) string { return filepath.Join("testdata", name+".got") }

// firstDiff renders the first differing line with one line of context.
func firstDiff(want, got string) string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	n := len(w)
	if len(g) > n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			return fmt.Sprintf("  line %d:\n    want: %s\n    got:  %s", i+1, wl, gl)
		}
	}
	return "  (lengths differ only)"
}
