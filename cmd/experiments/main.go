// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -id fig6 [-quick] [-seed 42] [-csv out/]
//	experiments -all [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/serverless-sched/sfs/internal/experiments"
)

func main() {
	var (
		id    = flag.String("id", "", "experiment ID to run (e.g. fig6, table2)")
		all   = flag.Bool("all", false, "run every experiment")
		list  = flag.Bool("list", false, "list experiment IDs")
		quick = flag.Bool("quick", false, "reduced scale for a fast pass")
		seed  = flag.Uint64("seed", 42, "RNG seed")
		csv   = flag.String("csv", "", "directory to write per-experiment CSV files")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	var toRun []experiments.Experiment
	switch {
	case *all:
		toRun = experiments.All()
	case *id != "":
		e, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *id)
			os.Exit(1)
		}
		toRun = []experiments.Experiment{e}
	default:
		fmt.Fprintln(os.Stderr, "nothing to do: pass -id, -all, or -list")
		os.Exit(1)
	}

	for _, e := range toRun {
		rep := e.Run(cfg)
		fmt.Println(rep.Render())
		if *csv != "" {
			if err := os.MkdirAll(*csv, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*csv, rep.ID+".csv")
			if err := os.WriteFile(path, []byte(rep.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}
