// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -id fig6 [-quick] [-seed 42] [-csv out/] [-parallel 8]
//	experiments -all [-quick] [-parallel 8] [-exact]
//
// With -all the registered experiments fan out across -parallel
// workers (default: all CPUs); per-experiment sweeps such as keepalive
// and cluster-dispatch subdivide further across the same pool. Results
// are byte-identical at any worker count: every experiment runs with a
// seed derived from (-seed, experiment ID), and output is collected in
// registry order. A single -id run uses the same derivation, so it
// reproduces that experiment's slice of a full -all sweep.
//
// CSV write failures do not abort the run: remaining experiments still
// execute and print, the errors are reported together at the end, and
// the process exits non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/serverless-sched/sfs/internal/experiments"
	"github.com/serverless-sched/sfs/internal/metrics"
)

func main() {
	var (
		id       = flag.String("id", "", "experiment ID to run (e.g. fig6, table2)")
		all      = flag.Bool("all", false, "run every experiment")
		list     = flag.Bool("list", false, "list experiment IDs")
		quick    = flag.Bool("quick", false, "reduced scale for a fast pass")
		seed     = flag.Uint64("seed", 42, "RNG seed (per-experiment seeds are derived from it)")
		csv      = flag.String("csv", "", "directory to write per-experiment CSV files")
		parallel = flag.Int("parallel", runtime.NumCPU(), "worker count for experiments and their inner sweeps")
		exact    = flag.Bool("exact", false, "exact sort-based percentiles instead of streaming P² estimates")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	metrics.ExactQuantiles = *exact

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	var reports []*experiments.Report
	switch {
	case *all:
		reports = experiments.RunAll(cfg, *parallel)
	case *id != "":
		e, ok := experiments.ByID(*id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *id)
			os.Exit(1)
		}
		reports = []*experiments.Report{experiments.RunOne(cfg, e, *parallel)}
	default:
		fmt.Fprintln(os.Stderr, "nothing to do: pass -id, -all, or -list")
		os.Exit(1)
	}

	// Print every report and attempt every CSV; collect failures instead
	// of aborting mid-loop so one bad write cannot cost the rest of a
	// long sweep's output.
	var errs []error
	for _, rep := range reports {
		fmt.Println(rep.Render())
		// Wall-clock is printed here rather than rendered into the
		// report: rendered bytes stay a pure function of (seed, scale).
		fmt.Printf("(%s ran in %v)\n\n", rep.ID, rep.WallClock.Round(time.Millisecond))
		if *csv == "" {
			continue
		}
		path := filepath.Join(*csv, rep.ID+".csv")
		if err := writeCSV(path, rep.CSV()); err != nil {
			errs = append(errs, err)
			continue
		}
		fmt.Printf("wrote %s\n\n", path)
	}
	if len(errs) > 0 {
		for _, err := range errs {
			fmt.Fprintln(os.Stderr, err)
		}
		fmt.Fprintf(os.Stderr, "%d of %d CSV files failed\n", len(errs), len(reports))
		os.Exit(1)
	}
}

// writeCSV creates the output directory on demand and writes one
// report's CSV.
func writeCSV(path, data string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(data), 0o644)
}
