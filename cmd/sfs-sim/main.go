// Command sfs-sim runs a single scheduler × workload simulation — or,
// with -hosts N, a multi-host cluster simulation behind a dispatch
// policy — and prints the paper's metrics: duration percentiles, RTE
// distribution, context switches, and (for SFS) scheduler-internal
// statistics.
//
// Examples:
//
//	sfs-sim -sched SFS -n 10000 -cores 16 -load 1.0
//	sfs-sim -sched CFS -n 10000 -cores 16 -load 0.8 -arrivals trace
//	sfs-sim -sched SFS -fixed-slice 100ms -io-fraction 0.75
//	sfs-sim -hosts 4 -dispatch JSQ -sched SFS -cores 8 -load 0.9
//	sfs-sim -hosts 1000 -cores 4 -dispatch RR -shards 16 -workload big.sftb
//	sfs-sim -hosts 8 -dispatch PREDICTED -sched PSRTF -speeds 1.5x4,0.5x4 -net-delay 200us-2ms
//	sfs-sim -keepalive HIST -memory 4096 -arrivals trace
//	sfs-sim -chain LINEAR -chain-depth 4 -sched SFS -load 0.9
//	sfs-sim -chain DIAMOND -hosts 4 -dispatch WARMFIRST -keepalive TTL
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/serverless-sched/sfs/internal/chain"
	"github.com/serverless-sched/sfs/internal/cluster"
	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/dist"
	"github.com/serverless-sched/sfs/internal/lifecycle"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/schedulers"
	"github.com/serverless-sched/sfs/internal/stats"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

// keepaliveOpts carries the container lifecycle flags. Zero Policy
// means the paper's pre-warmed setup (no cold starts modeled).
type keepaliveOpts struct {
	policy string
	memory int
	ttl    time.Duration
	seed   uint64
}

// enabled reports whether lifecycle modeling was requested.
func (k keepaliveOpts) enabled() bool { return k.policy != "" }

// newManager builds one host's lifecycle manager from the flags.
func (k keepaliveOpts) newManager() (*lifecycle.Manager, error) {
	return lifecycle.NewByName(k.policy, k.memory, k.ttl, k.seed)
}

// report prints the cold-start summary line shared by both modes.
func (k keepaliveOpts) report(st lifecycle.Stats) {
	fmt.Println(st.Summary(k.policy))
}

// fleetOpts carries the cluster fleet-shape flags: heterogeneous host
// speed factors and the dispatcher->host network-delay distribution.
// Zero values model the uniform zero-delay fleet.
type fleetOpts struct {
	speeds   []float64
	netDelay dist.Distribution
	seed     uint64
}

// chainOpts carries the function-chain workflow flags, with the family
// resolved once up front. A nil spec means plain single-invocation
// requests.
type chainOpts struct {
	family string
	depth  int
	seed   uint64
	spec   *chain.Spec // resolved family; nil when disabled
}

// resolve validates the family flag and caches its spec. Stages inherit
// each request's sampled service time, so the chain multiplies the
// trace's per-request CPU demand by the stage count.
func (c *chainOpts) resolve() error {
	if c.family == "" {
		return nil
	}
	spec, err := chain.NewFamily(c.family, chain.FamilyConfig{Depth: c.depth})
	if err != nil {
		return err
	}
	c.spec = &spec
	return nil
}

// enabled reports whether workflow expansion was requested.
func (c chainOpts) enabled() bool { return c.spec != nil }

// config builds the injector config applying the family to every app in
// the trace.
func (c chainOpts) config() chain.Config {
	return chain.Config{Default: c.spec, Seed: c.seed}
}

// loadDivisor returns the factor by which the requested offered load is
// divided before workload generation, so the chain's total CPU demand
// (every stage, not just the request) offers the asked-for load.
func (c chainOpts) loadDivisor() float64 {
	if !c.enabled() {
		return 1
	}
	return c.spec.ServiceFactor(0) // all stages inherit: factor = stage count
}

func main() {
	var (
		schedName  = flag.String("sched", "SFS", "scheduler: "+strings.Join(schedulers.Names(), ", ")+", or IDEAL (single host only)")
		n          = flag.Int("n", 10000, "number of function invocations")
		cores      = flag.Int("cores", 16, "CPU cores (per host when -hosts > 1)")
		load       = flag.Float64("load", 1.0, "offered CPU load fraction (calibrated to hosts x cores)")
		hosts      = flag.Int("hosts", 1, "simulated hosts; > 1 enables cluster mode")
		dispatch   = flag.String("dispatch", "RR", "cluster dispatch policy: "+strings.Join(cluster.Names(), ", "))
		arrivals   = flag.String("arrivals", "poisson", "arrival process: synth (RPS ramp) or a scenario family: "+strings.Join(workload.FamilyNames(), ", ")+" (trace = azure)")
		seed       = flag.Uint64("seed", 42, "RNG seed")
		fixedSlice = flag.Duration("fixed-slice", 0, "pin the SFS time slice (0 = adaptive)")
		poll       = flag.Duration("poll", 4*time.Millisecond, "SFS kernel-status polling interval")
		noHybrid   = flag.Bool("no-hybrid", false, "disable SFS overload fallback")
		noIO       = flag.Bool("io-oblivious", false, "disable SFS I/O-aware polling")
		ioFraction = flag.Float64("io-fraction", 0, "fraction of requests with one leading 10-100ms I/O op")
		wlFile     = flag.String("workload", "", "replay a workload trace, CSV or binary (see faasbench export/convert), instead of generating one")
		shards     = flag.Int("shards", 0, "cluster mode: run the sharded parallel engine with this many shards (0 = serial)")
		dispatchL  = flag.Duration("dispatch-latency", 0, "sharded mode: dispatcher->host latency and lookahead window (default 1ms)")
		speedSpec  = flag.String("speeds", "", "cluster mode: per-host speed factors, e.g. \"1.5x4,0.5x4\" or a single value for all hosts (empty = uniform 1.0)")
		netDelaySp = flag.String("net-delay", "", "cluster mode: dispatcher->host network delay, e.g. \"500us\" or \"200us-2ms\" (uniform)")
		startRPS   = flag.Float64("start-rps", 50, "synth arrivals: starting RPS")
		targetRPS  = flag.Float64("target-rps", 500, "synth arrivals: RPS at the end of the ramp")
		horizon    = flag.Duration("horizon", 60*time.Second, "synth arrivals: trace span")
		keepalive  = flag.String("keepalive", "", "container keep-alive policy: "+strings.Join(lifecycle.PolicyNames(), ", ")+" (empty = pre-warmed, no cold starts)")
		memory     = flag.Int("memory", 0, "container memory capacity in MB per host (0 = unlimited; needs -keepalive)")
		kaTTL      = flag.Duration("keepalive-ttl", lifecycle.DefaultTTL, "fixed keep-alive window (TTL policy) and HIST fallback")
		chainName  = flag.String("chain", "", "expand each request into a workflow: "+strings.Join(chain.FamilyNames(), ", ")+" (empty = plain invocations; poisson/trace loads are recalibrated to the whole chain)")
		chainDepth = flag.Int("chain-depth", 3, "workflow scale: LINEAR stages / DIAMOND branches (needs -chain)")
	)
	flag.Parse()

	if *hosts < 1 {
		fmt.Fprintln(os.Stderr, "-hosts must be at least 1")
		os.Exit(1)
	}
	if (*speedSpec != "" || *netDelaySp != "") && *hosts == 1 {
		fmt.Fprintln(os.Stderr, "-speeds and -net-delay model the cluster fleet; they need -hosts > 1")
		os.Exit(1)
	}
	speeds, err := cluster.ParseSpeeds(*speedSpec, *hosts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	netDelay, err := cluster.ParseNetDelay(*netDelaySp)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fleet := fleetOpts{speeds: speeds, netDelay: netDelay, seed: *seed}
	ka := keepaliveOpts{policy: *keepalive, memory: *memory, ttl: *kaTTL, seed: *seed}
	ch := chainOpts{family: *chainName, depth: *chainDepth, seed: *seed}
	// Validate the family name (and cache its spec) before simulating
	// anything.
	if err := ch.resolve(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !ka.enabled() && *memory != 0 {
		fmt.Fprintln(os.Stderr, "-memory needs -keepalive (pre-warmed runs model no containers)")
		os.Exit(1)
	}
	if ka.enabled() {
		// Validate the policy name before simulating anything.
		if _, err := ka.newManager(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	totalCores := *hosts * *cores

	if *wlFile != "" {
		f, err := os.Open(*wlFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		src, err := trace.DetectSource(f)
		if err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tasks := trace.Collect(src)
		f.Close()
		if err := trace.Err(src); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *hosts > 1 {
			runCluster(trace.FromTasks(*wlFile, tasks), *schedName, *dispatch, *hosts, *cores, *shards, *dispatchL, *seed, *fixedSlice, *poll, *noHybrid, *noIO, ka, ch, fleet)
			return
		}
		runReplay(tasks, *schedName, *cores, *fixedSlice, *poll, *noHybrid, *noIO, ka, ch)
		return
	}

	// With -chain, the offered load is recalibrated to the whole chain's
	// CPU demand (stage count x per-request demand) for the calibrated
	// arrival families; synth arrivals follow their explicit RPS profile.
	genLoad := *load / ch.loadDivisor()
	var w *workload.Workload
	switch *arrivals {
	case "poisson":
		w = workload.Generate(workload.Spec{
			N: *n, Cores: totalCores, Load: genLoad, Seed: *seed, IOFraction: *ioFraction,
		})
	case "trace":
		w = workload.AzureSampled(workload.AzureSampledSpec{
			N: *n, Cores: totalCores, Load: genLoad, Seed: *seed, IOFraction: *ioFraction,
		})
	case "synth":
		w = workload.Synthetic(workload.SyntheticSpec{
			Shape: trace.ShapeRamp, StartRPS: *startRPS, TargetRPS: *targetRPS,
			Horizon: *horizon, N: *n, Seed: *seed, IOFraction: *ioFraction,
		})
	default:
		// Any registered scenario family (diurnal, flashcrowd,
		// multitenant, trigger, ... — poisson and trace were handled
		// above with their extra knobs).
		var err error
		w, err = workload.NewFamilyWorkload(*arrivals, workload.FamilyConfig{
			N: *n, Cores: totalCores, Load: genLoad, Seed: *seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Printf("workload: %s (mean service %v, mean IAT %v, offered load %.2f)\n",
		w.Description, w.MeanService, w.MeanIAT, w.OfferedLoad(totalCores))
	if ch.enabled() {
		if *arrivals == "synth" {
			fmt.Printf("chain: %s depth %d applied to every request (synth follows its RPS profile; no load recalibration)\n",
				strings.ToUpper(ch.family), ch.depth)
		} else {
			fmt.Printf("chain: %s depth %d applied to every request (per-request load divided by %.0f)\n",
				strings.ToUpper(ch.family), ch.depth, ch.loadDivisor())
		}
	}

	if *hosts > 1 {
		runCluster(w.Source(), *schedName, *dispatch, *hosts, *cores, *shards, *dispatchL, *seed, *fixedSlice, *poll, *noHybrid, *noIO, ka, ch, fleet)
		return
	}
	runReplay(w.Clone(), *schedName, *cores, *fixedSlice, *poll, *noHybrid, *noIO, ka, ch)
}

// mkFactory builds the per-host scheduler constructor for cluster mode,
// honoring the SFS tuning knobs.
func mkFactory(schedName string, fixedSlice, poll time.Duration, noHybrid, noIO bool) (func() cpusim.Scheduler, error) {
	if strings.EqualFold(schedName, "SFS") {
		cfg := core.DefaultConfig()
		cfg.FixedSlice = fixedSlice
		cfg.PollInterval = poll
		cfg.Hybrid = !noHybrid
		cfg.IOAware = !noIO
		return func() cpusim.Scheduler { return core.New(cfg) }, nil
	}
	// Validate the name once up front so a typo fails before simulating.
	if _, err := schedulers.New(schedName); err != nil {
		return nil, err
	}
	return func() cpusim.Scheduler {
		s, err := schedulers.New(schedName)
		if err != nil {
			panic(err)
		}
		return s
	}, nil
}

// runCluster simulates the source across hosts behind the named
// dispatch policy and reports merged plus per-host metrics.
func runCluster(src trace.Source, schedName, dispatch string, hosts, cores, shards int, dispatchLatency time.Duration, seed uint64, fixedSlice, poll time.Duration, noHybrid, noIO bool, ka keepaliveOpts, ch chainOpts, fleet fleetOpts) {
	factory, err := mkFactory(schedName, fixedSlice, poll, noHybrid, noIO)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	d, err := cluster.NewDispatcher(dispatch, cluster.FactoryConfig{Hosts: hosts, Seed: seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := cluster.Config{
		Hosts:           hosts,
		CoresPerHost:    cores,
		NewScheduler:    factory,
		Dispatcher:      d,
		Shards:          shards,
		DispatchLatency: dispatchLatency,
		Speeds:          fleet.speeds,
		NetDelay:        fleet.netDelay,
		NetDelaySeed:    fleet.seed,
	}
	if ka.enabled() {
		cfg.NewLifecycle = func() *lifecycle.Manager {
			m, err := ka.newManager()
			if err != nil {
				panic(err) // validated in main
			}
			return m
		}
	}
	if ch.enabled() {
		ccfg := ch.config()
		cfg.Chain = &ccfg
	}
	cl, err := cluster.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	start := time.Now()
	res, err := cl.Run(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("cluster: %d hosts x %d cores, %s dispatch, %s per host\n", hosts, cores, res.Dispatcher, res.Scheduler)
	if res.Shards > 0 {
		fmt.Printf("sharded engine: %d shards, %v lookahead\n", res.Shards, res.Lookahead)
	}
	fmt.Printf("simulated %v of virtual time in %v wall time\n",
		res.Makespan.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
	fmt.Print(res.RenderPerHost())
	if ka.enabled() {
		ka.report(res.Lifecycle)
	}
	if ch.enabled() {
		fmt.Println(res.Workflows.Render())
	}
	fmt.Println()
	report(res.Merged, nil, res.Makespan, nil)
}

// runReplay simulates tasks under the named scheduler and reports.
func runReplay(tasks []*task.Task, schedName string, cores int, fixedSlice, poll time.Duration, noHybrid, noIO bool, ka keepaliveOpts, ch chainOpts) {
	var sfs *core.SFS
	var s cpusim.Scheduler
	switch strings.ToUpper(schedName) {
	case "SFS":
		cfg := core.DefaultConfig()
		cfg.FixedSlice = fixedSlice
		cfg.PollInterval = poll
		cfg.Hybrid = !noHybrid
		cfg.IOAware = !noIO
		sfs = core.New(cfg)
		s = sfs
	case "IDEAL":
		if ka.enabled() || ch.enabled() {
			// IDEAL is the analytic zero-interference oracle; silently
			// dropping cold starts or chain expansion would make
			// baseline comparisons unfair, so refuse rather than ignore
			// the flags.
			fmt.Fprintln(os.Stderr, "-keepalive and -chain are not supported with -sched IDEAL (the oracle models no containers or workflows)")
			os.Exit(1)
		}
		sched.RunIdeal(tasks)
		report(metrics.Run{Scheduler: "IDEAL", Tasks: tasks}, nil, 0, nil)
		return
	default:
		var err error
		if s, err = schedulers.New(schedName); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	eng := cpusim.NewEngine(cpusim.Config{Cores: cores, Deadline: 10000 * time.Hour}, s)
	start := time.Now()
	var makespan time.Duration
	var mgr *lifecycle.Manager
	if ka.enabled() {
		var err error
		if mgr, err = ka.newManager(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	var inj *chain.Injector
	switch {
	case ch.enabled():
		var err error
		if inj, err = chain.NewInjector(ch.config()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if makespan, err = chain.Run(trace.FromTasks("replay", tasks), inj, mgr, eng); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tasks = eng.Tasks()
	case mgr != nil:
		var err error
		if makespan, err = lifecycle.Run(trace.FromTasks("replay", tasks), mgr, eng); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tasks = eng.Tasks()
	default:
		eng.Submit(tasks...)
		makespan = eng.Run()
	}
	fmt.Printf("simulated %v of virtual time in %v wall time (%d ctx switches, %.0f%% utilization)\n",
		makespan.Round(time.Millisecond), time.Since(start).Round(time.Millisecond),
		eng.TotalCtxSwitches, eng.Utilization()*100)
	if mgr != nil {
		ka.report(mgr.Stats())
	}
	if inj != nil {
		fmt.Println(metrics.WorkflowRun{Scheduler: s.Name(), Workflows: inj.Workflows()}.Render())
	}
	report(metrics.Run{Scheduler: s.Name(), Tasks: tasks}, eng, makespan, sfs)
}

func report(r metrics.Run, eng *cpusim.Engine, makespan time.Duration, sfs *core.SFS) {
	ps := r.Percentiles(metrics.StandardPercentiles)
	header := []string{"metric"}
	row := []string{r.Scheduler}
	for i, p := range metrics.StandardPercentiles {
		header = append(header, fmt.Sprintf("p%g", p))
		row = append(row, metrics.FormatDuration(ps[i]))
	}
	fmt.Print(metrics.Table(header, [][]string{row}))
	fmt.Printf("mean turnaround: %s\n", metrics.FormatDuration(r.MeanTurnaround()))
	for _, bound := range []float64{0.5, 0.8, 0.95} {
		fmt.Printf("RTE >= %.2f: %.1f%% of requests\n", bound, 100*r.FractionRTEAtLeast(bound))
	}
	rtes := r.RTEs()
	fmt.Printf("RTE < 0.2: %.1f%% of requests\n", 100*stats.FractionBelow(rtes, 0.2))
	if sfs != nil {
		fmt.Printf("SFS: S=%v, %d requests, %d FILTER completions, %d demotions, %d overload-routed\n",
			sfs.Slice(), sfs.Stat.Requests, sfs.Stat.FilterCompletions,
			sfs.Stat.Demotions, sfs.Stat.OverloadRouted)
	}
}
