// Command sfs-sim runs a single scheduler × workload simulation and
// prints the paper's metrics: duration percentiles, RTE distribution,
// context switches, and (for SFS) scheduler-internal statistics.
//
// Examples:
//
//	sfs-sim -sched SFS -n 10000 -cores 16 -load 1.0
//	sfs-sim -sched CFS -n 10000 -cores 16 -load 0.8 -arrivals trace
//	sfs-sim -sched SFS -fixed-slice 100ms -io-fraction 0.75
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/serverless-sched/sfs/internal/core"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/sched"
	"github.com/serverless-sched/sfs/internal/schedulers"
	"github.com/serverless-sched/sfs/internal/stats"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

func main() {
	var (
		schedName  = flag.String("sched", "SFS", "scheduler: SFS, CFS, FIFO, RR, SRTF, IDEAL")
		n          = flag.Int("n", 10000, "number of function invocations")
		cores      = flag.Int("cores", 16, "CPU cores")
		load       = flag.Float64("load", 1.0, "offered CPU load fraction")
		arrivals   = flag.String("arrivals", "poisson", "arrival process: poisson, trace, or synth (RPS ramp)")
		seed       = flag.Uint64("seed", 42, "RNG seed")
		fixedSlice = flag.Duration("fixed-slice", 0, "pin the SFS time slice (0 = adaptive)")
		poll       = flag.Duration("poll", 4*time.Millisecond, "SFS kernel-status polling interval")
		noHybrid   = flag.Bool("no-hybrid", false, "disable SFS overload fallback")
		noIO       = flag.Bool("io-oblivious", false, "disable SFS I/O-aware polling")
		ioFraction = flag.Float64("io-fraction", 0, "fraction of requests with one leading 10-100ms I/O op")
		wlFile     = flag.String("workload", "", "replay a workload CSV (see faasbench export) instead of generating one")
		startRPS   = flag.Float64("start-rps", 50, "synth arrivals: starting RPS")
		targetRPS  = flag.Float64("target-rps", 500, "synth arrivals: RPS at the end of the ramp")
		horizon    = flag.Duration("horizon", 60*time.Second, "synth arrivals: trace span")
	)
	flag.Parse()

	if *wlFile != "" {
		f, err := os.Open(*wlFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tasks, err := workload.ReadCSV(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runReplay(tasks, *schedName, *cores, *fixedSlice, *poll, *noHybrid, *noIO)
		return
	}

	var w *workload.Workload
	switch *arrivals {
	case "poisson":
		w = workload.Generate(workload.Spec{
			N: *n, Cores: *cores, Load: *load, Seed: *seed, IOFraction: *ioFraction,
		})
	case "trace":
		w = workload.AzureSampled(workload.AzureSampledSpec{
			N: *n, Cores: *cores, Load: *load, Seed: *seed, IOFraction: *ioFraction,
		})
	case "synth":
		w = workload.Synthetic(workload.SyntheticSpec{
			Shape: trace.ShapeRamp, StartRPS: *startRPS, TargetRPS: *targetRPS,
			Horizon: *horizon, N: *n, Seed: *seed, IOFraction: *ioFraction,
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown arrival process %q\n", *arrivals)
		os.Exit(1)
	}
	fmt.Printf("workload: %s (mean service %v, mean IAT %v, offered load %.2f)\n",
		w.Description, w.MeanService, w.MeanIAT, w.OfferedLoad(*cores))

	runReplay(w.Clone(), *schedName, *cores, *fixedSlice, *poll, *noHybrid, *noIO)
}

// runReplay simulates tasks under the named scheduler and reports.
func runReplay(tasks []*task.Task, schedName string, cores int, fixedSlice, poll time.Duration, noHybrid, noIO bool) {
	var sfs *core.SFS
	var s cpusim.Scheduler
	switch strings.ToUpper(schedName) {
	case "SFS":
		cfg := core.DefaultConfig()
		cfg.FixedSlice = fixedSlice
		cfg.PollInterval = poll
		cfg.Hybrid = !noHybrid
		cfg.IOAware = !noIO
		sfs = core.New(cfg)
		s = sfs
	case "IDEAL":
		sched.RunIdeal(tasks)
		report(metrics.Run{Scheduler: "IDEAL", Tasks: tasks}, nil, 0, nil)
		return
	default:
		var err error
		if s, err = schedulers.New(schedName); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	eng := cpusim.NewEngine(cpusim.Config{Cores: cores, Deadline: 10000 * time.Hour}, s)
	eng.Submit(tasks...)
	start := time.Now()
	makespan := eng.Run()
	fmt.Printf("simulated %v of virtual time in %v wall time (%d ctx switches, %.0f%% utilization)\n",
		makespan.Round(time.Millisecond), time.Since(start).Round(time.Millisecond),
		eng.TotalCtxSwitches, eng.Utilization()*100)
	report(metrics.Run{Scheduler: s.Name(), Tasks: tasks}, eng, makespan, sfs)
}

func report(r metrics.Run, eng *cpusim.Engine, makespan time.Duration, sfs *core.SFS) {
	ps := r.Percentiles(metrics.StandardPercentiles)
	header := []string{"metric"}
	row := []string{r.Scheduler}
	for i, p := range metrics.StandardPercentiles {
		header = append(header, fmt.Sprintf("p%g", p))
		row = append(row, metrics.FormatDuration(ps[i]))
	}
	fmt.Print(metrics.Table(header, [][]string{row}))
	fmt.Printf("mean turnaround: %s\n", metrics.FormatDuration(r.MeanTurnaround()))
	for _, bound := range []float64{0.5, 0.8, 0.95} {
		fmt.Printf("RTE >= %.2f: %.1f%% of requests\n", bound, 100*r.FractionRTEAtLeast(bound))
	}
	rtes := r.RTEs()
	fmt.Printf("RTE < 0.2: %.1f%% of requests\n", 100*stats.FractionBelow(rtes, 0.2))
	if sfs != nil {
		fmt.Printf("SFS: S=%v, %d requests, %d FILTER completions, %d demotions, %d overload-routed\n",
			sfs.Slice(), sfs.Stat.Requests, sfs.Stat.FilterCompletions,
			sfs.Stat.Demotions, sfs.Stat.OverloadRouted)
	}
}
