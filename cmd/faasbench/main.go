// Command faasbench generates and inspects FaaS workloads modeled after
// the Azure Functions traces (the paper's FaaSBench, §VII).
//
// Examples:
//
//	faasbench -n 10000 -cores 16 -load 0.8                # summarize
//	faasbench -n 10000 -arrivals trace -spikes 5          # bursty trace
//	faasbench -n 1000 -emit                               # CSV to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/serverless-sched/sfs/internal/stats"
	"github.com/serverless-sched/sfs/internal/workload"
)

func main() {
	var (
		n          = flag.Int("n", 10000, "number of invocations")
		cores      = flag.Int("cores", 16, "cores the load is calibrated for")
		load       = flag.Float64("load", 0.8, "offered CPU load fraction")
		arrivals   = flag.String("arrivals", "poisson", "arrival process: poisson or trace")
		seed       = flag.Uint64("seed", 42, "RNG seed")
		ioFraction = flag.Float64("io-fraction", 0, "fraction of requests with a leading I/O op")
		spikes     = flag.Int("spikes", 0, "overload spikes to inject (trace arrivals only)")
		mix        = flag.Bool("mix", false, "use the fib/md/sa application mix instead of pure fib")
		emit       = flag.Bool("emit", false, "emit the workload as CSV instead of a summary")
		save       = flag.String("save", "", "write the workload to a CSV file replayable by sfs-sim -workload")
	)
	flag.Parse()

	var apps []workload.AppChoice
	if *mix {
		apps = []workload.AppChoice{
			{Profile: workload.AppFib, Weight: 0.5},
			{Profile: workload.AppMd, Weight: 0.25},
			{Profile: workload.AppSa, Weight: 0.25},
		}
	}

	var w *workload.Workload
	switch *arrivals {
	case "poisson":
		w = workload.Generate(workload.Spec{
			N: *n, Cores: *cores, Load: *load, Seed: *seed,
			IOFraction: *ioFraction, Apps: apps,
		})
	case "trace":
		w = workload.AzureSampled(workload.AzureSampledSpec{
			N: *n, Cores: *cores, Load: *load, Seed: *seed,
			IOFraction: *ioFraction, Apps: apps, Spikes: *spikes,
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown arrival process %q\n", *arrivals)
		os.Exit(1)
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := workload.WriteCSV(f, w.Tasks); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d tasks to %s\n", len(w.Tasks), *save)
		return
	}

	if *emit {
		fmt.Println("id,app,arrival_ms,service_ms,io_ops,io_total_ms")
		for _, t := range w.Tasks {
			fmt.Printf("%d,%s,%.3f,%.3f,%d,%.3f\n",
				t.ID, t.App,
				float64(t.Arrival)/float64(time.Millisecond),
				float64(t.Service)/float64(time.Millisecond),
				len(t.IOOps),
				float64(t.TotalIO())/float64(time.Millisecond))
		}
		return
	}

	fmt.Printf("workload: %s\n", w.Description)
	fmt.Printf("requests: %d, mean service %v, mean IAT %v, offered load on %d cores: %.3f\n",
		len(w.Tasks), w.MeanService, w.MeanIAT, *cores, w.OfferedLoad(*cores))

	var durs []time.Duration
	byApp := map[string]int{}
	withIO := 0
	for _, t := range w.Tasks {
		durs = append(durs, t.IdealDuration())
		byApp[t.App]++
		if len(t.IOOps) > 0 {
			withIO++
		}
	}
	ps := stats.DurationPercentiles(durs, []float64{50, 90, 99, 99.9})
	fmt.Printf("ideal duration percentiles: p50=%v p90=%v p99=%v p99.9=%v\n", ps[0], ps[1], ps[2], ps[3])
	fmt.Printf("apps: %v; %d requests carry I/O ops\n", byApp, withIO)

	fmt.Println("\nTable I check (generated fraction per duration range):")
	for _, row := range workload.TableI() {
		lo, hi := row.Lo, row.Hi
		count := 0
		for _, d := range durs {
			if d >= lo && (hi == 0 || d < hi) {
				count++
			}
		}
		rangeStr := fmt.Sprintf("%8v - %8v", lo, hi)
		if hi == 0 {
			rangeStr = fmt.Sprintf(">= %v      ", lo)
		}
		fmt.Printf("  %s  paper %5.1f%%  generated %5.1f%%\n",
			rangeStr, row.Probability*100, 100*float64(count)/float64(len(durs)))
	}
}
