// Command faasbench generates, exports, and replays FaaS invocation
// traces through the streaming trace pipeline (the paper's FaaSBench,
// §VII, plus an invitro-style synthetic RPS synthesizer).
//
// Subcommands:
//
//	faasbench gen     [flags]              # generate and summarize (default)
//	faasbench export  [flags] -o out.csv   # generate and stream to CSV or
//	                                       # binary (-format binary)
//	faasbench replay  -in out.csv [flags]  # replay a CSV or binary trace in
//	                                       # the simulator (format sniffed)
//	faasbench convert -in a.csv -o a.sftb  # convert a trace between CSV and
//	                                       # the binary (SFTB) format
//	faasbench cluster [flags]              # fan a trace across -hosts simulated
//	                                       # hosts behind a -dispatch policy;
//	                                       # -shards N runs the sharded engine
//	faasbench chain   [flags]              # expand each request into a -family
//	                                       # workflow and report end-to-end stats
//	faasbench ingest  -invocations f.csv   # stream a real Azure Functions 2019
//	                                       # dataset CSV onto a replayable trace
//
// Scenario families (-arrivals):
//
//	poisson      Table I durations, Poisson IATs calibrated to -load
//	trace        Azure-sampled bursty arrivals (§VII), optional -spikes
//	synth        explicit RPS profile: -shape constant|ramp|step|sine,
//	             -start-rps/-target-rps over -horizon (or -slots × -slot-dur,
//	             the invitro synthesizer's RPS-slot staircase)
//	diurnal      sine-on-trend day/night cycle with a weekend dip
//	flashcrowd   exponential-decay 50x spikes with correlated app skew
//	multitenant  one heavy bursty tenant against many light steady ones
//	trigger      timer/queue/http mixes; under chain, each class feeds its
//	             own workflow shape
//
// Examples:
//
//	faasbench gen -n 10000 -cores 16 -load 0.8
//	faasbench gen -arrivals trace -spikes 5
//	faasbench gen -arrivals diurnal -n 100000 -cores 16 -load 0.7
//	faasbench cluster -arrivals flashcrowd -hosts 8 -dispatch JSQ
//	faasbench chain -arrivals trigger -sched SFS -n 20000
//	faasbench ingest -invocations invocations_per_function_md.anon.d01.csv \
//	    -durations function_durations_percentiles.anon.d01.csv \
//	    -minutes 540:600 -scale 0.1 -o azure-d01.sftb
//	faasbench export -arrivals synth -shape ramp -start-rps 50 -target-rps 500 -horizon 60s -o ramp.csv
//	faasbench replay -in ramp.csv -sched SFS -cores 16
//	faasbench replay -in ramp.csv -sched SFS -keepalive HIST -memory 2048
//	faasbench export -arrivals trace -n 1000000 -format binary -o big.sftb
//	faasbench convert -in ramp.csv -o ramp.sftb
//	faasbench cluster -hosts 4 -host-cores 8 -dispatch PULL -sched SFS -arrivals trace
//	faasbench cluster -in ramp.csv -hosts 2 -host-cores 16 -dispatch JSQ
//	faasbench cluster -in big.sftb -hosts 1000 -host-cores 4 -dispatch RR -shards 16
//	faasbench cluster -hosts 4 -dispatch WARMFIRST -keepalive TTL -memory 1024 -arrivals trace
//	faasbench cluster -hosts 8 -dispatch PREDICTED -sched PSRTF -speeds 1.5x4,0.5x4 -net-delay 200us-2ms
//	faasbench chain -family LINEAR -depth 4 -sched SFS -arrivals trace -load 0.9
//	faasbench chain -family DIAMOND -sched CFS -keepalive HIST -memory 2048
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/serverless-sched/sfs/internal/azure"
	"github.com/serverless-sched/sfs/internal/chain"
	"github.com/serverless-sched/sfs/internal/cluster"
	"github.com/serverless-sched/sfs/internal/cpusim"
	"github.com/serverless-sched/sfs/internal/lifecycle"
	"github.com/serverless-sched/sfs/internal/metrics"
	"github.com/serverless-sched/sfs/internal/schedulers"
	"github.com/serverless-sched/sfs/internal/stats"
	"github.com/serverless-sched/sfs/internal/task"
	"github.com/serverless-sched/sfs/internal/trace"
	"github.com/serverless-sched/sfs/internal/workload"
)

// kaFlags is the container keep-alive flag set shared by the replay and
// cluster subcommands.
type kaFlags struct {
	policy *string
	memory *int
	ttl    *time.Duration
}

func newKAFlags(fs *flag.FlagSet) *kaFlags {
	return &kaFlags{
		policy: fs.String("keepalive", "", "container keep-alive policy: "+strings.Join(lifecycle.PolicyNames(), ", ")+" (empty = pre-warmed, no cold starts)"),
		memory: fs.Int("memory", 0, "container memory capacity in MB per host (0 = unlimited; needs -keepalive)"),
		ttl:    fs.Duration("keepalive-ttl", lifecycle.DefaultTTL, "fixed keep-alive window (TTL policy) and HIST fallback"),
	}
}

func (k *kaFlags) enabled() bool { return *k.policy != "" }

// newManager builds one host's manager; call only when enabled (the
// name and capacity were checked by validate, so errors here are
// internal).
func (k *kaFlags) newManager(seed uint64) *lifecycle.Manager {
	m, err := lifecycle.NewByName(*k.policy, *k.memory, *k.ttl, seed)
	if err != nil {
		fatal(err)
	}
	return m
}

func (k *kaFlags) validate() {
	if !k.enabled() {
		if *k.memory != 0 {
			fatal(fmt.Errorf("-memory needs -keepalive (pre-warmed runs model no containers)"))
		}
		return
	}
	if _, err := lifecycle.NewByName(*k.policy, *k.memory, *k.ttl, 0); err != nil {
		fatal(err)
	}
}

func (k *kaFlags) report(st lifecycle.Stats) {
	fmt.Println(st.Summary(*k.policy))
}

func main() {
	args := os.Args[1:]
	cmd := "gen"
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		cmd, args = args[0], args[1:]
	}
	switch cmd {
	case "gen":
		cmdGen(args)
	case "export":
		cmdExport(args)
	case "replay":
		cmdReplay(args)
	case "convert":
		cmdConvert(args)
	case "cluster":
		cmdCluster(args)
	case "chain":
		cmdChain(args)
	case "ingest":
		cmdIngest(args)
	default:
		fmt.Fprintf(os.Stderr, "unknown subcommand %q (want gen, export, replay, convert, cluster, chain, or ingest)\n", cmd)
		os.Exit(1)
	}
}

// genFlags holds the generation flag set shared by gen and export.
type genFlags struct {
	fs         *flag.FlagSet
	n          *int
	cores      *int
	load       *float64
	arrivals   *string
	seed       *uint64
	ioFraction *float64
	spikes     *int
	mix        *bool
	// synth shape flags (invitro synthesizer UX).
	shape     *string
	startRPS  *float64
	targetRPS *float64
	slots     *int
	slotDur   *time.Duration
	horizon   *time.Duration
}

func newGenFlags(name string) *genFlags {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	return &genFlags{
		fs:         fs,
		n:          fs.Int("n", 10000, "number of invocations (synth: cap, 0 = until horizon)"),
		cores:      fs.Int("cores", 16, "cores the load is calibrated for"),
		load:       fs.Float64("load", 0.8, "offered CPU load fraction (poisson/trace)"),
		arrivals:   fs.String("arrivals", "poisson", "scenario family: synth, or one of "+strings.Join(workload.FamilyNames(), ", ")+" (trace = azure)"),
		seed:       fs.Uint64("seed", 42, "RNG seed"),
		ioFraction: fs.Float64("io-fraction", 0, "fraction of requests with a leading I/O op"),
		spikes:     fs.Int("spikes", 0, "overload spikes to inject (trace arrivals only)"),
		mix:        fs.Bool("mix", false, "use the fib/md/sa application mix instead of pure fib"),
		shape:      fs.String("shape", "ramp", "synth RPS profile: constant, ramp, step, or sine"),
		startRPS:   fs.Float64("start-rps", 50, "synth: starting RPS value"),
		targetRPS:  fs.Float64("target-rps", 500, "synth: target RPS reached in the last slot / at the horizon"),
		slots:      fs.Int("slots", 10, "synth step: number of fixed-RPS slots"),
		slotDur:    fs.Duration("slot-dur", 10*time.Second, "synth step: duration of each RPS slot"),
		horizon:    fs.Duration("horizon", 60*time.Second, "synth: total trace span (ramp/sine/constant)"),
	}
}

func (g *genFlags) apps() []workload.AppChoice {
	if !*g.mix {
		return nil
	}
	return []workload.AppChoice{
		{Profile: workload.AppFib, Weight: 0.5},
		{Profile: workload.AppMd, Weight: 0.25},
		{Profile: workload.AppSa, Weight: 0.25},
	}
}

// source builds the configured scenario family as a trace.Source.
func (g *genFlags) source() trace.Source {
	switch *g.arrivals {
	case "poisson":
		return workload.Stream(workload.Spec{
			N: *g.n, Cores: *g.cores, Load: *g.load, Seed: *g.seed,
			IOFraction: *g.ioFraction, Apps: g.apps(),
		})
	case "trace":
		return workload.AzureSampledStream(workload.AzureSampledSpec{
			N: *g.n, Cores: *g.cores, Load: *g.load, Seed: *g.seed,
			IOFraction: *g.ioFraction, Apps: g.apps(), Spikes: *g.spikes,
		})
	case "synth":
		shape, err := trace.ParseShape(*g.shape)
		if err != nil {
			fatal(err)
		}
		spec := workload.SyntheticSpec{
			Shape: shape, StartRPS: *g.startRPS, TargetRPS: *g.targetRPS,
			Slots: *g.slots, SlotDur: *g.slotDur, N: *g.n,
			IOFraction: *g.ioFraction, Apps: g.apps(), Seed: *g.seed,
		}
		if shape != trace.ShapeStep {
			spec.Horizon = *g.horizon
		}
		return workload.SyntheticStream(spec)
	default:
		// Any registered scenario family (diurnal, flashcrowd,
		// multitenant, trigger, ...); poisson/trace/synth were handled
		// above with their extra knobs.
		src, err := workload.NewFamily(*g.arrivals, workload.FamilyConfig{
			N: *g.n, Cores: *g.cores, Load: *g.load, Seed: *g.seed, Apps: g.apps(),
		})
		if err != nil {
			fatal(err)
		}
		return src
	}
}

func cmdGen(args []string) {
	g := newGenFlags("gen")
	emit := g.fs.Bool("emit", false, "emit the trace as per-invocation CSV to stdout instead of a summary")
	g.fs.Parse(args)
	src := g.source()
	if *emit {
		fmt.Println("id,app,arrival_ms,service_ms,io_ops,io_total_ms")
		for {
			t, ok := src.Next()
			if !ok {
				break
			}
			fmt.Printf("%d,%s,%.3f,%.3f,%d,%.3f\n",
				t.ID, t.App,
				float64(t.Arrival)/float64(time.Millisecond),
				float64(t.Service)/float64(time.Millisecond),
				len(t.IOOps),
				float64(t.TotalIO())/float64(time.Millisecond))
		}
		checkErr(src)
		return
	}
	summarize(src, *g.cores)
}

func cmdExport(args []string) {
	g := newGenFlags("export")
	out := g.fs.String("o", "", "output path (default stdout); replayable by faasbench replay and sfs-sim -workload")
	format := g.fs.String("format", "csv", "output format: csv or binary (the length-prefixed SFTB codec)")
	g.fs.Parse(args)
	if *format != "csv" && *format != "binary" {
		fatal(fmt.Errorf("unknown -format %q (want csv or binary)", *format))
	}
	src := g.source()
	w := os.Stdout
	var f *os.File
	if *out != "" {
		var err error
		if f, err = os.Create(*out); err != nil {
			fatal(err)
		}
		w = f
	}
	write := trace.WriteCSV
	if *format == "binary" {
		write = trace.WriteBinary
	}
	n, err := write(w, src)
	if err != nil {
		fatal(err)
	}
	if f != nil {
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d invocations to %s (%s, %s)\n", n, *out, src, *format)
	}
}

// cmdConvert re-encodes a trace between the CSV and binary formats.
// Both directions are lossless: timestamps are already microsecond
// fixed points in either codec, so converting back reproduces the
// original bytes.
func cmdConvert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	in := fs.String("in", "", "input trace, CSV or binary (required; format sniffed)")
	out := fs.String("o", "", "output path (default stdout)")
	to := fs.String("to", "", "target format: csv or binary (default: the opposite of the input)")
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("convert needs -in trace"))
	}
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	src, err := trace.DetectSource(f)
	if err != nil {
		fatal(err)
	}
	target := *to
	if target == "" {
		if src.String() == "binary" {
			target = "csv"
		} else {
			target = "binary"
		}
	}
	write := trace.WriteCSV
	switch target {
	case "csv":
	case "binary":
		write = trace.WriteBinary
	default:
		fatal(fmt.Errorf("unknown -to format %q (want csv or binary)", target))
	}
	w := os.Stdout
	var of *os.File
	if *out != "" {
		if of, err = os.Create(*out); err != nil {
			fatal(err)
		}
		w = of
	}
	n, err := write(w, src)
	if err != nil {
		fatal(err)
	}
	if of != nil {
		if err := of.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("converted %d invocations: %s (%s) -> %s (%s)\n", n, *in, src, *out, target)
	}
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "", "trace to replay, CSV or binary (required; format sniffed)")
	schedName := fs.String("sched", "", "simulate the trace under a scheduler ("+strings.Join(schedulers.Names(), ", ")+"); empty = summarize only")
	cores := fs.Int("cores", 16, "cores of the simulated host")
	seed := fs.Uint64("seed", 42, "RNG seed for cold-start sampling")
	ka := newKAFlags(fs)
	fs.Parse(args)
	if *in == "" {
		fatal(fmt.Errorf("replay needs -in trace.csv"))
	}
	ka.validate()
	f, err := os.Open(*in)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	src, err := trace.DetectSource(f)
	if err != nil {
		fatal(err)
	}
	if *schedName == "" {
		summarize(src, *cores)
		return
	}
	s := mkScheduler(*schedName)
	tasks := trace.Collect(src)
	checkErr(src)
	if len(tasks) == 0 {
		fatal(fmt.Errorf("empty trace"))
	}
	eng := cpusim.NewEngine(cpusim.Config{Cores: *cores, Deadline: 10000 * time.Hour}, s)
	start := time.Now()
	var makespan time.Duration
	var mgr *lifecycle.Manager
	if ka.enabled() {
		mgr = ka.newManager(*seed)
		if makespan, err = lifecycle.Run(trace.FromTasks(*in, tasks), mgr, eng); err != nil {
			fatal(err)
		}
		tasks = eng.Tasks()
	} else {
		eng.Submit(tasks...)
		makespan = eng.Run()
	}
	fmt.Printf("replayed %d invocations from %s under %s on %d cores\n", len(tasks), *in, s.Name(), *cores)
	fmt.Printf("simulated %v of virtual time in %v wall time (%d ctx switches, %.0f%% utilization)\n",
		makespan.Round(time.Millisecond), time.Since(start).Round(time.Millisecond),
		eng.TotalCtxSwitches, eng.Utilization()*100)
	if mgr != nil {
		ka.report(mgr.Stats())
	}
	r := metrics.Run{Scheduler: s.Name(), Tasks: tasks}
	ps := r.Percentiles([]float64{50, 90, 99, 99.9})
	fmt.Printf("turnaround: p50=%s p90=%s p99=%s p99.9=%s mean=%s\n",
		metrics.FormatDuration(ps[0]), metrics.FormatDuration(ps[1]),
		metrics.FormatDuration(ps[2]), metrics.FormatDuration(ps[3]),
		metrics.FormatDuration(r.MeanTurnaround()))
	for _, bound := range []float64{0.5, 0.95} {
		fmt.Printf("RTE >= %.2f: %.1f%% of requests\n", bound, 100*r.FractionRTEAtLeast(bound))
	}
}

func mkScheduler(name string) cpusim.Scheduler {
	s, err := schedulers.New(name)
	if err != nil {
		fatal(err)
	}
	return s
}

// cmdCluster fans a generated or replayed trace out across N simulated
// hosts behind a dispatch policy, each host running its own scheduler
// instance, and reports merged plus per-host metrics.
func cmdCluster(args []string) {
	g := newGenFlags("cluster")
	hosts := g.fs.Int("hosts", 4, "number of simulated hosts")
	hostCores := g.fs.Int("host-cores", 8, "cores per host (load calibration uses hosts x host-cores, overriding -cores)")
	dispatch := g.fs.String("dispatch", "RR", "dispatch policy: "+strings.Join(cluster.Names(), ", "))
	schedName := g.fs.String("sched", "SFS", "per-host scheduler: "+strings.Join(schedulers.Names(), ", "))
	in := g.fs.String("in", "", "replay this trace (CSV or binary, sniffed) instead of generating (gen flags ignored)")
	shards := g.fs.Int("shards", 0, "run the sharded parallel engine with this many shards (0 = serial)")
	dispatchLatency := g.fs.Duration("dispatch-latency", 0, "sharded mode: dispatcher->host latency and lookahead window (default 1ms)")
	speedSpec := g.fs.String("speeds", "", "per-host speed factors, e.g. \"1.5x4,0.5x4\" or a single value for all hosts (empty = uniform 1.0)")
	netDelaySpec := g.fs.String("net-delay", "", "dispatcher->host network delay, e.g. \"500us\" or \"200us-2ms\" (uniform)")
	ka := newKAFlags(g.fs)
	g.fs.Parse(args)
	if *hosts < 1 || *hostCores < 1 {
		fatal(fmt.Errorf("cluster needs -hosts >= 1 and -host-cores >= 1"))
	}
	ka.validate()
	speeds, err := cluster.ParseSpeeds(*speedSpec, *hosts)
	if err != nil {
		fatal(err)
	}
	netDelay, err := cluster.ParseNetDelay(*netDelaySpec)
	if err != nil {
		fatal(err)
	}

	var src trace.Source
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if src, err = trace.DetectSource(f); err != nil {
			fatal(err)
		}
	} else {
		*g.cores = *hosts * *hostCores // calibrate offered load to the whole cluster
		src = g.source()
	}

	if _, err := schedulers.New(*schedName); err != nil {
		fatal(err)
	}
	d, err := cluster.NewDispatcher(*dispatch, cluster.FactoryConfig{Hosts: *hosts, Seed: *g.seed})
	if err != nil {
		fatal(err)
	}
	cfg := cluster.Config{
		Hosts:           *hosts,
		CoresPerHost:    *hostCores,
		NewScheduler:    func() cpusim.Scheduler { return mkScheduler(*schedName) },
		Dispatcher:      d,
		Shards:          *shards,
		DispatchLatency: *dispatchLatency,
		Speeds:          speeds,
		NetDelay:        netDelay,
		NetDelaySeed:    *g.seed,
	}
	if ka.enabled() {
		cfg.NewLifecycle = func() *lifecycle.Manager { return ka.newManager(*g.seed) }
	}
	cl, err := cluster.New(cfg)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	res, err := cl.Run(src)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("cluster: %d hosts x %d cores, %s dispatch, %s per host\n",
		*hosts, *hostCores, res.Dispatcher, res.Scheduler)
	if res.Shards > 0 {
		fmt.Printf("sharded engine: %d shards, %v lookahead\n", res.Shards, res.Lookahead)
	}
	fmt.Printf("simulated %v of virtual time in %v wall time\n",
		res.Makespan.Round(time.Millisecond), time.Since(start).Round(time.Millisecond))
	fmt.Print(res.RenderPerHost())
	if ka.enabled() {
		ka.report(res.Lifecycle)
	}
	ps := res.Merged.Percentiles([]float64{50, 90, 99, 99.9})
	fmt.Printf("cluster-wide turnaround: p50=%s p90=%s p99=%s p99.9=%s mean=%s\n",
		metrics.FormatDuration(ps[0]), metrics.FormatDuration(ps[1]),
		metrics.FormatDuration(ps[2]), metrics.FormatDuration(ps[3]),
		metrics.FormatDuration(res.Merged.MeanTurnaround()))
	for _, bound := range []float64{0.5, 0.95} {
		fmt.Printf("RTE >= %.2f: %.1f%% of requests\n", bound, 100*res.Merged.FractionRTEAtLeast(bound))
	}
}

// cmdChain expands every generated request into a workflow of the
// selected family and simulates it on one host, reporting per-stage
// percentiles alongside per-workflow end-to-end turnaround and slowdown
// — the metric per-invocation tables cannot show. The generated load is
// divided by the chain's stage count so the whole chain offers the
// requested -load.
func cmdChain(args []string) {
	g := newGenFlags("chain")
	family := g.fs.String("family", "LINEAR", "workflow family: "+strings.Join(chain.FamilyNames(), ", "))
	depth := g.fs.Int("depth", 3, "workflow scale: LINEAR stages / DIAMOND branches")
	schedName := g.fs.String("sched", "SFS", "scheduler: "+strings.Join(schedulers.Names(), ", "))
	ka := newKAFlags(g.fs)
	g.fs.Parse(args)
	ka.validate()

	var src trace.Source
	var injCfg chain.Config
	var familyDesc string
	if *g.arrivals == "trigger" {
		// The trigger family carries its own per-class workflow map
		// (http/queue/timer chains); -family and -depth are ignored and
		// the load is already calibrated to the whole chains.
		var cfg chain.Config
		var err error
		src, cfg, err = workload.TriggerStream(workload.TriggerSpec{
			N: *g.n, Cores: *g.cores, Load: *g.load, Seed: *g.seed,
		})
		if err != nil {
			fatal(err)
		}
		injCfg = cfg
		familyDesc = "TRIGGER mix"
	} else {
		spec, err := chain.NewFamily(*family, chain.FamilyConfig{Depth: *depth})
		if err != nil {
			fatal(err)
		}
		// Stages inherit each request's sampled service, so the chain
		// multiplies per-request CPU demand by the stage count;
		// recalibrate the calibrated families to the whole chain.
		if *g.arrivals != "synth" {
			*g.load /= spec.ServiceFactor(0)
		}
		src = g.source()
		injCfg = chain.Config{Default: &spec, Seed: *g.seed}
		familyDesc = fmt.Sprintf("%s depth %d", strings.ToUpper(*family), *depth)
	}
	inj, err := chain.NewInjector(injCfg)
	if err != nil {
		fatal(err)
	}
	s := mkScheduler(*schedName)
	eng := cpusim.NewEngine(cpusim.Config{Cores: *g.cores, Deadline: 10000 * time.Hour}, s)
	var mgr *lifecycle.Manager
	if ka.enabled() {
		mgr = ka.newManager(*g.seed)
	}
	start := time.Now()
	makespan, err := chain.Run(src, inj, mgr, eng)
	if err != nil {
		fatal(err)
	}
	tasks := eng.Tasks()
	if len(tasks) == 0 {
		fatal(fmt.Errorf("empty trace"))
	}

	fmt.Printf("chained %d invocations (%s) under %s on %d cores\n",
		len(tasks), familyDesc, s.Name(), *g.cores)
	fmt.Printf("simulated %v of virtual time in %v wall time (%d ctx switches, %.0f%% utilization)\n",
		makespan.Round(time.Millisecond), time.Since(start).Round(time.Millisecond),
		eng.TotalCtxSwitches, eng.Utilization()*100)
	if mgr != nil {
		ka.report(mgr.Stats())
	}
	r := metrics.Run{Scheduler: s.Name(), Tasks: tasks}
	ps := r.Percentiles([]float64{50, 90, 99, 99.9})
	fmt.Printf("per-stage turnaround: p50=%s p90=%s p99=%s p99.9=%s mean=%s\n",
		metrics.FormatDuration(ps[0]), metrics.FormatDuration(ps[1]),
		metrics.FormatDuration(ps[2]), metrics.FormatDuration(ps[3]),
		metrics.FormatDuration(r.MeanTurnaround()))
	wfr := metrics.WorkflowRun{Scheduler: s.Name(), Workflows: inj.Workflows()}
	fmt.Println(wfr.Render())
	slow := wfr.SlowdownPercentiles(50, 99)
	fmt.Printf("e2e slowdown: p50=%.2fx p99=%.2fx\n", slow[0], slow[1])
}

// summarize streams a source once, printing the headline statistics and
// the Table I range check.
func summarize(src trace.Source, cores int) {
	var durs []time.Duration
	byApp := map[string]int{}
	withIO := 0
	var tasks []*task.Task
	for {
		t, ok := src.Next()
		if !ok {
			break
		}
		tasks = append(tasks, t)
		durs = append(durs, t.IdealDuration())
		byApp[t.App]++
		if len(t.IOOps) > 0 {
			withIO++
		}
	}
	checkErr(src)
	if len(tasks) == 0 {
		fatal(fmt.Errorf("empty trace"))
	}

	var svcSum time.Duration
	for _, t := range tasks {
		svcSum += t.Service
	}
	meanCPU := svcSum / time.Duration(len(tasks))
	span := time.Duration(tasks[len(tasks)-1].Arrival - tasks[0].Arrival)
	meanIAT := time.Duration(0)
	offered := 0.0
	if len(tasks) > 1 && span > 0 {
		meanIAT = span / time.Duration(len(tasks)-1)
		offered = float64(meanCPU) / float64(meanIAT) / float64(cores)
	}

	fmt.Printf("trace: %s\n", src)
	fmt.Printf("requests: %d, span %v, mean CPU demand %v, mean IAT %v, offered load on %d cores: %.3f\n",
		len(tasks), span.Round(time.Millisecond), meanCPU, meanIAT, cores, offered)
	ps := stats.DurationPercentiles(durs, []float64{50, 90, 99, 99.9})
	fmt.Printf("ideal duration percentiles: p50=%v p90=%v p99=%v p99.9=%v\n", ps[0], ps[1], ps[2], ps[3])
	fmt.Printf("apps: %v; %d requests carry I/O ops\n", byApp, withIO)

	fmt.Println("\nTable I check (generated fraction per duration range):")
	for _, row := range workload.TableI() {
		lo, hi := row.Lo, row.Hi
		count := 0
		for _, d := range durs {
			if d >= lo && (hi == 0 || d < hi) {
				count++
			}
		}
		rangeStr := fmt.Sprintf("%8v - %8v", lo, hi)
		if hi == 0 {
			rangeStr = fmt.Sprintf(">= %v      ", lo)
		}
		fmt.Printf("  %s  paper %5.1f%%  generated %5.1f%%\n",
			rangeStr, row.Probability*100, 100*float64(count)/float64(len(durs)))
	}
}

// cmdIngest streams a real Azure Functions 2019 invocation CSV (row
// per function x 1440 minute columns, multi-GB at full size) onto a
// compact arrival-ordered tape and writes it out as a replayable
// trace. Memory is bounded by the emitted invocations plus the
// per-function duration index — never the CSV size — so a laptop can
// carve an experiment-sized window out of the full dataset.
func cmdIngest(args []string) {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	invPath := fs.String("invocations", "", "invocations_per_function CSV (required)")
	durPath := fs.String("durations", "", "function_durations_percentiles CSV servicing the invocations (optional; missing functions get -default-ms)")
	minutes := fs.String("minutes", "", "dataset minute window lo:hi (1-based, inclusive; empty = whole day)")
	scale := fs.Float64("scale", 1, "keep each invocation with this probability (0 < scale <= 1)")
	max := fs.Int("max", 0, "stop after this many invocations (0 = unlimited)")
	defaultMS := fs.Int("default-ms", 100, "service time in ms for functions without a durations row")
	seed := fs.Uint64("seed", 42, "RNG seed for thinning and within-minute placement")
	out := fs.String("o", "", "output path (default stdout); replayable by faasbench replay and sfs-sim -workload")
	format := fs.String("format", "binary", "output format: csv or binary (the length-prefixed SFTB codec)")
	fs.Parse(args)
	if *invPath == "" {
		fatal(fmt.Errorf("ingest needs -invocations file.csv"))
	}
	if *format != "csv" && *format != "binary" {
		fatal(fmt.Errorf("unknown -format %q (want csv or binary)", *format))
	}
	cfg := azure.IngestConfig{
		Scale:           *scale,
		MaxInvocations:  *max,
		DefaultDuration: time.Duration(*defaultMS) * time.Millisecond,
		Seed:            *seed,
	}
	if *minutes != "" {
		if _, err := fmt.Sscanf(*minutes, "%d:%d", &cfg.MinuteLo, &cfg.MinuteHi); err != nil {
			fatal(fmt.Errorf("bad -minutes %q (want lo:hi, e.g. 60:120): %v", *minutes, err))
		}
	}

	idx := map[azure.FuncKey]time.Duration{}
	if *durPath != "" {
		df, err := os.Open(*durPath)
		if err != nil {
			fatal(err)
		}
		if idx, err = azure.DurationsIndex(df); err != nil {
			df.Close()
			fatal(err)
		}
		df.Close()
	}

	inf, err := os.Open(*invPath)
	if err != nil {
		fatal(err)
	}
	defer inf.Close()
	start := time.Now()
	tp, st, err := azure.IngestTape(inf, idx, cfg)
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	var f *os.File
	if *out != "" {
		if f, err = os.Create(*out); err != nil {
			fatal(err)
		}
		w = f
	}
	write := trace.WriteCSV
	if *format == "binary" {
		write = trace.WriteBinary
	}
	n, err := write(w, tp.Source())
	if err != nil {
		fatal(err)
	}
	if f != nil {
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	truncated := ""
	if st.Truncated {
		truncated = " (truncated by -max)"
	}
	fmt.Fprintf(os.Stderr, "ingested %d invocations from %d rows (%d functions, %d defaulted durations)%s in %v; wrote %d records (%s)\n",
		st.Invocations, st.Rows, st.Functions, st.NoDuration, truncated,
		time.Since(start).Round(time.Millisecond), n, *format)
}

func checkErr(src trace.Source) {
	if err := trace.Err(src); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
