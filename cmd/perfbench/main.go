// Command perfbench runs the repository's performance harness
// (internal/perfbench) and writes the measurements as BENCH_<date>.json.
//
// Usage:
//
//	perfbench [-quick] [-out DIR] [-baseline FILE|auto] [-max-regress 0.25]
//
// With -baseline, the run is also a regression gate: every gated
// benchmark (engine-step, sharded-cluster, trace-binary-decode,
// trace-binary-encode, predicted-dispatch) may be at most -max-regress slower in ns/op
// than the baseline report, otherwise the process exits non-zero.
// Benchmarks the baseline predates are noted and skipped, so adding a
// scenario doesn't break the gate until a baseline containing it is
// checked in. Passing `-baseline auto` picks the lexically-newest
// checked-in BENCH_*.json in the repository root — the project's most
// recent trajectory point — which is how CI pins the gate without
// hard-coding a file name.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"github.com/serverless-sched/sfs/internal/perfbench"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "reduced scenario sizes for a fast CI pass")
		seed       = flag.Uint64("seed", 42, "RNG seed for synthetic inputs")
		out        = flag.String("out", ".", "directory to write BENCH_<date>.json into")
		workers    = flag.Int("workers", runtime.NumCPU(), "worker count for the experiment-suite timing")
		baseline   = flag.String("baseline", "", "baseline BENCH_*.json to gate against, or 'auto' for the newest in the repo root")
		maxRegress = flag.Float64("max-regress", 0.25, "maximum allowed ns/op regression vs the baseline for each gated benchmark (0.25 = +25%)")
		skipExp    = flag.Bool("skip-experiments", false, "skip the experiment-suite wall-clock phase")
	)
	flag.Parse()

	// Resolve and load the baseline BEFORE running or writing anything:
	// with `-baseline auto` and `-out .` the fresh report could otherwise
	// overwrite a same-date checked-in baseline and the gate would
	// compare the run against itself.
	var base *perfbench.Report
	basePath := *baseline
	if basePath == "auto" {
		var err error
		basePath, err = perfbench.LatestBaseline(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if basePath == "" {
			fmt.Fprintln(os.Stderr, "note: no checked-in BENCH_*.json baseline found; gate will be skipped")
		}
	}
	if basePath != "" {
		var err error
		base, err = perfbench.ReadFile(basePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	rep, err := perfbench.Run(perfbench.Options{
		Quick:           *quick,
		Seed:            *seed,
		Workers:         *workers,
		SkipExperiments: *skipExp,
		Log:             os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	path, err := rep.WriteFile(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (GOMAXPROCS=%d)\n", path, rep.GoMaxProcs)
	for _, note := range rep.Notes {
		fmt.Printf("note: %s\n", note)
	}
	if path == basePath {
		fmt.Fprintf(os.Stderr, "note: overwrote the baseline file %s (gate still compares against its previous contents)\n", basePath)
	}
	if rep.Experiments != nil {
		fmt.Printf("experiment suite: %.0f ms at %d workers (%.2fx over %.0f ms serial)\n",
			rep.Experiments.WallClockMS, rep.Experiments.Workers,
			rep.Experiments.Speedup, rep.Experiments.SerialWallClockMS)
	}

	if base == nil {
		return
	}
	failed := false
	for _, name := range perfbench.GatedBenchmarks() {
		if _, ok := base.Find(name); !ok {
			// A benchmark newer than the baseline can't regress against
			// it; it joins the gate once a baseline containing it lands.
			fmt.Fprintf(os.Stderr, "note: baseline %s predates benchmark %q; skipping its gate\n", basePath, name)
			continue
		}
		if err := perfbench.Compare(rep, base, name, *maxRegress); err != nil {
			fmt.Fprintf(os.Stderr, "regression gate vs %s FAILED: %v\n", basePath, err)
			failed = true
			continue
		}
		cur, _ := rep.Find(name)
		baseB, _ := base.Find(name)
		fmt.Printf("regression gate vs %s passed: %s %.0f ns/op (baseline %.0f, limit +%.0f%%)\n",
			basePath, name, cur.NsPerOp, baseB.NsPerOp, 100**maxRegress)
	}
	if failed {
		os.Exit(1)
	}
}
