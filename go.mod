module github.com/serverless-sched/sfs

go 1.24
